// Package supervisor owns the replica side of the ReSync lifecycle end to
// end, so replication survives real-world failure instead of degenerating
// into the full-reload baseline the paper argues against (Section 5: the
// cookie exists precisely so a disconnected replica resumes with a poll).
//
// The supervision loop is a small state machine:
//
//	connect → begin|resume → stream|poll → backoff → connect → …
//
// A transport failure anywhere closes the connection and re-enters connect
// after a capped, jittered exponential backoff; the session cookie is kept
// and the next exchange is a resume-poll, not a reload. A stale-session
// response (the typed e-syncRefreshRequired wire error) instead clears the
// cookie and content and re-Begins. In persist mode a dead stream falls
// back to polling and the stream is re-established on the next cycle.
//
// With a state directory configured, the cookie and the replicated content
// are checkpointed through internal/persist (atomic temp-file + rename)
// after every applied batch, so a rebooted replica reloads its content
// locally and resumes the master session via poll — the restart costs one
// resume exchange, not a full content transfer.
package supervisor

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"filterdir/internal/ldapnet"
	"filterdir/internal/metrics"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
)

// State is the supervisor's position in its lifecycle state machine.
type State int32

// Supervisor states; see the package comment for the transitions.
const (
	StateIdle State = iota
	StateConnecting
	StateSyncing // begin or resume exchange in flight
	StatePolling
	StateStreaming
	StateBackoff
	StateStopped
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateConnecting:
		return "connecting"
	case StateSyncing:
		return "syncing"
	case StatePolling:
		return "polling"
	case StateStreaming:
		return "streaming"
	case StateBackoff:
		return "backoff"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Mode selects the steady-state synchronization style.
type Mode int

const (
	// ModePoll re-polls the session on every PollInterval tick.
	ModePoll Mode = iota
	// ModePersist holds a persist-mode stream open and falls back to
	// polling (then re-establishes the stream) whenever it dies.
	ModePersist
)

// Config parameterizes a Supervisor. Master and Spec are required;
// everything else has serviceable defaults.
type Config struct {
	// Master is the upstream server's address. In a cascaded topology this
	// may be a mid-tier replica serving ReSync rather than the root master.
	Master string
	// Fallback is the root master's address for cascaded topologies. When
	// the configured upstream rejects the spec as not contained (wire
	// referral → ldapnet.ErrNotContained) or answers with a stale-session
	// error, the supervisor diverts to the fallback and re-Begins there;
	// after RetryUpstreamAfter it probes the preferred upstream again.
	// Empty disables diversion (any upstream error is handled in place).
	Fallback string
	// RetryUpstreamAfter is how long a diverted supervisor stays on the
	// fallback before probing the preferred upstream again (default 1m).
	// Each armed probe is jittered to ±20% of this so a mass divert (a
	// tier restart rejecting every leaf at once) does not re-probe the
	// tier in lockstep.
	RetryUpstreamAfter time.Duration
	// WatchFilters arms the notification-driven re-probe: while diverted
	// to the fallback, a dedicated watch connection long-polls the
	// preferred upstream for an admission-filter change (the
	// OIDFiltersWatch control) and fires the probe the moment the tier
	// widens, instead of waiting out RetryUpstreamAfter. The jittered
	// timer stays armed as a backstop for upstreams that do not support
	// the control.
	WatchFilters bool
	// ResumeCookie arms a session cookie restored by the caller (e.g. a
	// cascade tier that checkpoints its upstream cookie alongside its own
	// store) so the first exchange is a resume-poll. The caller must have
	// registered the spec's content in the replica already. Ignored when a
	// StateDir checkpoint supplies its own cookie.
	ResumeCookie string
	// OnApplied, when non-nil, is called after each exchange's updates have
	// been applied to the replica (with the update count), before the
	// checkpoint. A cascade tier uses it to stamp apply time for its
	// apply→rebroadcast latency metric. Called from the supervision loop;
	// it must not block.
	OnApplied func(n int)
	// OnWatermark, when non-nil, receives the upstream commit watermark
	// (resync PollResult.CSN) after each exchange whose updates have been
	// applied — the local content now reflects the upstream journal up to
	// that position. An edge-write Writer retires pending ops against it; a
	// cascade tier records (local CSN, upstream watermark) pairs for its
	// downstream consumers. Watermarks may regress after a fallback to a
	// lagging upstream; consumers must tolerate that. Called from the
	// supervision loop; it must not block.
	OnWatermark func(csn uint64)
	// Spec is the replicated content specification.
	Spec query.Query
	// Mode selects polling or persist-stream steady state.
	Mode Mode
	// StateDir durably checkpoints cookie and content when non-empty.
	StateDir string
	// PollInterval is the steady-state poll cadence (default 1s).
	PollInterval time.Duration
	// IdleTimeout bounds the gap between persist-stream messages
	// (0 = none): a master stalled longer counts as a dead stream.
	IdleTimeout time.Duration
	// BackoffBase/BackoffMax bound the capped exponential reconnect
	// backoff (defaults 50ms / 5s). Each wait is jittered to
	// [d/2, d) so restarting replicas do not reconnect in lockstep.
	BackoffBase, BackoffMax time.Duration
	// DialTimeout bounds dials and per-message I/O (default
	// ldapnet.DefaultTimeout).
	DialTimeout time.Duration
	// DemoteAfter is the number of consecutive fast persist-stream deaths
	// (the master's slow-consumer policy closing the stream right after it
	// is built) after which the supervisor stops rebuilding the stream and
	// polls for DemoteCooldown instead (default 3).
	DemoteAfter int
	// DemoteCooldown is how long a demoted supervisor stays in poll mode
	// before trying the stream again (default 10×PollInterval).
	DemoteCooldown time.Duration
	// Seed makes the backoff jitter deterministic: it seeds the
	// supervisor's single random source exactly once, in New, so a chaos
	// replay with the same seed sees the same backoff schedule.
	Seed int64
	// Dial is the transport hook (nil = TCP); the chaos layer wraps it.
	Dial ldapnet.DialFunc
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.PollInterval <= 0 {
		c.PollInterval = time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = ldapnet.DefaultTimeout
	}
	if c.RetryUpstreamAfter <= 0 {
		c.RetryUpstreamAfter = time.Minute
	}
	if c.DemoteAfter <= 0 {
		c.DemoteAfter = 3
	}
	if c.DemoteCooldown <= 0 {
		c.DemoteCooldown = 10 * c.PollInterval
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Supervisor drives one replicated content spec against one master.
type Supervisor struct {
	cfg      config
	rep      *replica.FilterReplica
	counters *metrics.ReplicaCounters
	// rng drives the backoff jitter. It is seeded exactly once (in New,
	// from cfg.Seed) and consumed only by the run goroutine; reseeding it
	// per retry would make every jitter draw the source's first value and
	// break deterministic chaos replays.
	rng *rand.Rand
	// probeRng jitters the upstream re-probe deadline. It is a separate
	// seeded source so arming probes does not perturb the backoff
	// schedule above (chaos replays depend on its draw order).
	probeRng *rand.Rand

	// Persist-stream demotion tracking; run goroutine only.
	fastDeaths   int       // consecutive streams that died young
	demotedUntil time.Time // poll-only until this instant

	// probeDeadline (UnixNano, 0 = disarmed) is set when the loop diverts
	// to the fallback; the steady-state loops return errProbeDue once it
	// passes, so a healthy fallback session still yields to re-prefer the
	// configured Master.
	probeDeadline atomic.Int64

	// Filters-watch state (run goroutine arms/disarms; the watcher
	// goroutine clears itself on exit).
	watchMu   sync.Mutex
	watchStop chan struct{}   // non-nil while a watcher is running
	watchConn *ldapnet.Client // in-flight watch connection, closed to cancel
	watchWG   sync.WaitGroup

	mu         sync.Mutex
	cookie     string
	resumeTok  proto.ResumeToken // in-flight chunked reload position (zero outside one)
	target     string            // current upstream address (Master, or Fallback when diverted)
	state      State
	exchanges  int64     // successful synchronization exchanges applied
	lastSyncAt time.Time // completion time of the newest applied exchange

	synced    chan struct{} // closed after the first successful exchange
	syncOnce  sync.Once
	stop      chan struct{}
	stopOnce  sync.Once
	done      chan struct{}
	startOnce sync.Once
}

// config is Config after default-filling plus derived values.
type config struct {
	Config
	specKey string
}

// New creates a supervisor applying the spec's content into rep. With a
// state directory configured, durable state from a previous incarnation is
// restored immediately: the content is loaded into rep and the saved
// cookie armed, so the first exchange after Start is a resume-poll.
func New(cfg Config, rep *replica.FilterReplica) (*Supervisor, error) {
	cfg.fillDefaults()
	s := &Supervisor{
		cfg:      config{Config: cfg, specKey: cfg.Spec.Normalize().Key()},
		rep:      rep,
		counters: &metrics.ReplicaCounters{},
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		probeRng: rand.New(rand.NewSource(cfg.Seed ^ 0x70726f6265)), // distinct stream per seed
		synced:   make(chan struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.target = cfg.Master
	if cfg.StateDir != "" {
		cookie, tok, addr, restored, err := s.restore()
		if err != nil {
			return nil, fmt.Errorf("restore replica state: %w", err)
		}
		if restored {
			s.cookie = cookie
			s.resumeTok = tok
			if addr != "" {
				// The cookie names a session at the server it was issued
				// by; resume against that address even if it is the
				// fallback (the probe-back timer re-prefers Master).
				s.target = addr
			}
			if !tok.IsZero() {
				s.cfg.Logf("supervisor: restored %d entries mid-transfer, resuming chunk %d/%d at %s",
					rep.EntryCount(), tok.Chunk, tok.Chunks, s.target)
			} else {
				s.cfg.Logf("supervisor: restored %d entries, resuming session %q at %s",
					rep.EntryCount(), cookie, s.target)
			}
		}
	}
	if s.cookie == "" && cfg.ResumeCookie != "" {
		s.cookie = cfg.ResumeCookie
	}
	return s, nil
}

// Target reports the upstream address currently synchronized against: the
// configured Master, or the Fallback while diverted.
func (s *Supervisor) Target() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.target
}

// canFallback reports whether a divert to the fallback is possible and
// would change anything.
func (s *Supervisor) canFallback() bool {
	return s.cfg.Fallback != "" && s.Target() != s.cfg.Fallback
}

// switchTo repoints the supervision loop at addr and clears the session
// cookie and any resume token (both are per-server); the content itself is
// kept and replaced wholesale by the Begin at the new upstream, so the
// replica keeps serving its last-known-good content across the switch.
func (s *Supervisor) switchTo(addr string) {
	s.mu.Lock()
	s.target = addr
	s.cookie = ""
	s.resumeTok = proto.ResumeToken{}
	s.mu.Unlock()
}

// releaseSession best-effort ends the current session at the current
// target before the loop switches servers, so a fallback master does not
// accumulate abandoned sessions from leaves that migrated back upstream.
// Failure costs nothing: the switch proceeds and the old session idles out
// server-side.
func (s *Supervisor) releaseSession() {
	cookie := s.Cookie()
	if cookie == "" {
		return
	}
	target := s.Target()
	client, err := ldapnet.DialWith(s.cfg.Dial, target, s.cfg.DialTimeout)
	if err != nil {
		return
	}
	defer client.Close()
	if err := client.SyncEnd(cookie); err != nil {
		s.cfg.Logf("supervisor: end session at %s: %v", target, err)
	}
}

// divert moves the loop to the fallback master after the preferred
// upstream proved unusable.
func (s *Supervisor) divert(reason string) {
	s.counters.UpstreamFallbacks.Add(1)
	s.cfg.Logf("supervisor: diverting to fallback %s: %s", s.cfg.Fallback, reason)
	s.switchTo(s.cfg.Fallback)
}

// armProbe schedules the next upstream probe, jittered to ±20% of
// RetryUpstreamAfter (probeJitter): after a mass divert every leaf arms at
// the same instant, and without jitter they would all re-probe — and, on
// failure, re-divert and re-arm — in lockstep forever. With the watch
// enabled it also (re)starts the filters-watch connection so a tier-side
// change fires the probe early. disarmProbe cancels both (the loop is back
// on the preferred upstream). Both run on the supervision goroutine.
func (s *Supervisor) armProbe() {
	s.probeDeadline.Store(time.Now().Add(probeJitter(s.probeRng, s.cfg.RetryUpstreamAfter)).UnixNano())
	if s.cfg.WatchFilters {
		s.startWatch()
	}
}
func (s *Supervisor) disarmProbe() {
	s.probeDeadline.Store(0)
	s.stopWatch()
}

// probeJitter draws a duration uniformly from [0.8d, 1.2d].
func probeJitter(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	spread := int64(2 * d / 5) // 40% of d
	return d - d/5 + time.Duration(rng.Int63n(spread+1))
}

// probeDue reports whether a scheduled upstream probe has come due.
func (s *Supervisor) probeDue() bool {
	d := s.probeDeadline.Load()
	return d != 0 && time.Now().UnixNano() >= d
}

// ProbeNow pulls an armed probe deadline forward to the present: the
// steady-state loop yields its fallback session at the next tick and the
// outer loop re-probes the preferred upstream immediately. A no-op when no
// probe is armed (not diverted) or the deadline already passed. Safe from
// any goroutine — the filters-watch path calls it when the upstream
// announces a filter-set change.
func (s *Supervisor) ProbeNow() {
	now := time.Now().UnixNano()
	for {
		d := s.probeDeadline.Load()
		if d == 0 || d <= now {
			return
		}
		if s.probeDeadline.CompareAndSwap(d, now) {
			return
		}
	}
}

// startWatch launches the filters-watch goroutine if none is running: it
// dials the preferred upstream and long-polls for an admission-filter
// change, firing ProbeNow when one arrives. One watch per divert episode —
// the goroutine exits after a successful notification (the probe either
// re-attaches, or re-diverts and re-arms a fresh watch).
func (s *Supervisor) startWatch() {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if s.watchStop != nil {
		return
	}
	stop := make(chan struct{})
	s.watchStop = stop
	s.watchWG.Add(1)
	go s.watchLoop(stop)
}

// stopWatch cancels a running watch, unblocking its in-flight read.
func (s *Supervisor) stopWatch() {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if s.watchStop == nil {
		return
	}
	close(s.watchStop)
	s.watchStop = nil
	if s.watchConn != nil {
		_ = s.watchConn.Close()
		s.watchConn = nil
	}
}

// watchLoop is the filters-watch goroutine: dial the preferred upstream,
// subscribe to its filter generation, and on a change fire the probe. Dial
// or subscribe failures (upstream down, control unsupported) back off for a
// poll interval and retry; the jittered timer remains the backstop either
// way.
func (s *Supervisor) watchLoop(stop chan struct{}) {
	defer s.watchWG.Done()
	defer func() {
		s.watchMu.Lock()
		if s.watchStop == stop {
			s.watchStop = nil
		}
		s.watchConn = nil
		s.watchMu.Unlock()
	}()
	for {
		select {
		case <-stop:
			return
		case <-s.stop:
			return
		default:
		}
		client, err := ldapnet.DialWith(s.cfg.Dial, s.cfg.Master, s.cfg.DialTimeout)
		if err == nil {
			s.watchMu.Lock()
			s.watchConn = client
			s.watchMu.Unlock()
			gen, werr := client.WatchFilters(s.cfg.Spec, 0)
			s.watchMu.Lock()
			s.watchConn = nil
			s.watchMu.Unlock()
			_ = client.Close()
			if werr == nil {
				s.cfg.Logf("supervisor: upstream %s filters changed (gen %d), probing now", s.cfg.Master, gen)
				s.ProbeNow()
				return
			}
			err = werr
		}
		s.cfg.Logf("supervisor: filters watch at %s: %v", s.cfg.Master, err)
		select {
		case <-stop:
			return
		case <-s.stop:
			return
		case <-time.After(s.cfg.PollInterval):
		}
	}
}

// errProbeDue unwinds a healthy fallback session so the outer loop can
// probe the preferred upstream again.
var errProbeDue = errors.New("upstream probe due")

// Counters exposes the supervision counters for status reporting.
func (s *Supervisor) Counters() *metrics.ReplicaCounters { return s.counters }

// State reports the current lifecycle state.
func (s *Supervisor) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Cookie returns the current session cookie ("" before the first Begin).
func (s *Supervisor) Cookie() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cookie
}

// Synced is closed after the first successful synchronization exchange.
func (s *Supervisor) Synced() <-chan struct{} { return s.synced }

// Exchanges reports the number of synchronization exchanges (begin, poll,
// or stream batch) whose updates have been fully applied to the replica — a
// test-visible convergence probe: an Exchanges() advance after the master
// quiesced means a whole exchange completed against the settled content.
func (s *Supervisor) Exchanges() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exchanges
}

// LastSyncAt reports when the newest applied exchange completed (zero
// before the first).
func (s *Supervisor) LastSyncAt() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSyncAt
}

// noteExchange records one fully applied exchange for the probes.
func (s *Supervisor) noteExchange() {
	s.mu.Lock()
	s.exchanges++
	s.lastSyncAt = time.Now()
	s.mu.Unlock()
}

// Start launches the supervision loop (idempotent).
func (s *Supervisor) Start() {
	s.startOnce.Do(func() { go s.run() })
}

// Stop terminates the loop, waits for it to exit and writes a final
// checkpoint so a later incarnation resumes from the exact stop point.
func (s *Supervisor) Stop() error {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
	// The run goroutine has exited, so no new watch can start; cancel any
	// in-flight one (closing its connection unblocks a deadline-free read)
	// and wait it out.
	s.stopWatch()
	s.watchWG.Wait()
	s.setState(StateStopped)
	return s.checkpoint()
}

func (s *Supervisor) setState(st State) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

func (s *Supervisor) setCookie(c string) {
	s.mu.Lock()
	s.cookie = c
	s.mu.Unlock()
}

// ResumeToken returns the in-flight chunked-reload token (zero outside a
// transfer).
func (s *Supervisor) ResumeToken() proto.ResumeToken {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resumeTok
}

func (s *Supervisor) setResumeToken(tok proto.ResumeToken) {
	s.mu.Lock()
	s.resumeTok = tok
	s.mu.Unlock()
}

// clearSession drops the session cookie and resume token while keeping the
// replicated content in service — a stale session is re-Begun, and the
// Begin's reload replaces the content wholesale only once it arrives.
func (s *Supervisor) clearSession() {
	s.mu.Lock()
	s.cookie = ""
	s.resumeTok = proto.ResumeToken{}
	s.mu.Unlock()
}

func (s *Supervisor) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// run is the outer supervision loop: each cycle dials, synchronizes until
// an error, classifies the error and backs off. With a fallback configured,
// a containment rejection or stale session at the preferred upstream
// diverts the loop to the fallback master; after RetryUpstreamAfter it
// probes the upstream again and sticks with whichever side completes an
// exchange first.
func (s *Supervisor) run() {
	defer close(s.done)
	attempt := 0
	var (
		divertedAt time.Time // when the loop last moved to the fallback
		probing    bool      // currently trying the preferred upstream again
		probeStart int64     // Exchanges() when the probe began
	)
	if s.cfg.Fallback != "" && s.Target() == s.cfg.Fallback && s.cfg.Fallback != s.cfg.Master {
		divertedAt = time.Now() // restored onto the fallback: start the timer
		s.armProbe()
	}
	for !s.stopped() {
		if !probing && !divertedAt.IsZero() && s.Target() == s.cfg.Fallback &&
			s.cfg.Fallback != s.cfg.Master &&
			s.probeDue() {
			s.cfg.Logf("supervisor: probing preferred upstream %s", s.cfg.Master)
			s.releaseSession()
			s.switchTo(s.cfg.Master)
			s.disarmProbe()
			probing, probeStart = true, s.Exchanges()
		}
		target := s.Target()
		s.setState(StateConnecting)
		s.counters.Dials.Add(1)
		client, err := ldapnet.DialWith(s.cfg.Dial, target, s.cfg.DialTimeout)
		if err != nil {
			s.cfg.Logf("supervisor: dial %s: %v", target, err)
			if probing {
				// Upstream still unreachable: go straight back to the
				// fallback instead of backing off against a dead server.
				s.divert("upstream probe dial failed: " + err.Error())
				divertedAt, probing = time.Now(), false
				s.armProbe()
				attempt = 0
				continue
			}
			s.backoff(&attempt)
			continue
		}
		err = s.syncLoop(client, &attempt)
		_ = client.Close()
		if s.stopped() {
			return
		}
		if probing {
			if s.Exchanges() > probeStart {
				// The upstream completed at least one exchange: the probe
				// succeeded, stay here and forget the diversion.
				probing, divertedAt = false, time.Time{}
				s.disarmProbe()
			} else if err != nil {
				// The probe died before a single exchange (rejection,
				// stale session, transport): divert back immediately.
				s.divert("upstream probe failed: " + err.Error())
				divertedAt, probing = time.Now(), false
				s.armProbe()
				attempt = 0
				continue
			}
		}
		switch {
		case errors.Is(err, errProbeDue):
			// The fallback session yielded for a scheduled probe; the next
			// iteration's deadline check performs the switch.
			attempt = 0
		case errors.Is(err, ldapnet.ErrNotContained) && s.canFallback():
			// The upstream replica cannot prove containment for our spec:
			// it will never serve this session, so take it to the master.
			s.divert("spec not contained at upstream: " + err.Error())
			divertedAt = time.Now()
			s.armProbe()
			attempt = 0
		case errors.Is(err, resync.ErrNoSuchSession) && s.canFallback():
			// A mid-tier that lost our session likely restarted empty or
			// trimmed past us; the fallback master can always serve us.
			s.counters.StaleSessions.Add(1)
			s.divert("stale session at upstream: " + err.Error())
			divertedAt = time.Now()
			s.armProbe()
			attempt = 0
		case errors.Is(err, resync.ErrNoSuchSession):
			// The master no longer knows our cookie (restart, expiry,
			// explicit end): drop the session but keep serving the
			// last-known-good content — the fresh Begin's reload replaces
			// it wholesale only when it actually arrives. (An earlier
			// version emptied the replica here, leaving it serving nothing
			// for the whole reconnect window.)
			s.counters.StaleSessions.Add(1)
			s.cfg.Logf("supervisor: session stale, re-beginning: %v", err)
			s.clearSession()
			attempt = 0
		case errors.Is(err, ldapnet.ErrNotContained):
			// No fallback to divert to: keep retrying with backoff in case
			// the upstream's stored queries grow to cover us.
			s.cfg.Logf("supervisor: spec rejected by upstream (no fallback): %v", err)
			s.backoff(&attempt)
		case err != nil:
			s.counters.Reconnects.Add(1)
			s.cfg.Logf("supervisor: connection lost: %v", err)
			s.backoff(&attempt)
		}
	}
}

// syncLoop performs the begin-or-resume exchange and then the steady-state
// mode on one connection, returning the error that ended it. A held resume
// token takes precedence: the reconnect continues the interrupted chunked
// reload where it left off instead of re-Beginning from scratch.
func (s *Supervisor) syncLoop(client *ldapnet.Client, attempt *int) error {
	s.setState(StateSyncing)
	cookie := s.Cookie()
	tok := s.ResumeToken()
	var res *ldapnet.SyncResult
	var err error
	switch {
	case !tok.IsZero():
		res, err = client.SyncResume(tok)
		if err != nil {
			if !ldapnet.IsTransient(err) && !errors.Is(err, resync.ErrNoSuchSession) {
				// The supplier categorically refused the token (e.g. it does
				// not speak resumption); drop it so the next cycle Begins.
				s.setResumeToken(proto.ResumeToken{})
			}
			return err
		}
		s.counters.Resumes.Add(1)
	case cookie == "":
		res, err = client.Sync(s.cfg.Spec, proto.ReSyncModePoll, "")
		if err != nil {
			return err
		}
		s.counters.Begins.Add(1)
		if res.Resume == nil {
			s.resetContent(res.Cookie)
		}
	default:
		res, err = client.Sync(s.cfg.Spec, proto.ReSyncModePoll, cookie)
		if err != nil {
			return err
		}
		s.counters.Resumes.Add(1)
		s.counters.Polls.Add(1)
	}
	*attempt = 0
	if err := s.applyExchange(client, res); err != nil {
		return err
	}
	s.syncOnce.Do(func() { close(s.synced) })

	if s.cfg.Mode == ModePersist {
		if wait := time.Until(s.demotedUntil); wait > 0 {
			// Recently demoted by the master's slow-consumer policy:
			// sit out the cooldown in poll mode, then let the outer
			// loop rebuild the stream.
			return s.pollFor(client, wait)
		}
		return s.streamSteadyState(client)
	}
	return s.pollSteadyState(client)
}

// pollFor polls like pollSteadyState but returns cleanly once d elapses,
// so a demoted persist supervisor re-attempts its stream after cooldown.
func (s *Supervisor) pollFor(client *ldapnet.Client, d time.Duration) error {
	s.setState(StatePolling)
	ticker := time.NewTicker(s.cfg.PollInterval)
	defer ticker.Stop()
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	for {
		select {
		case <-s.stop:
			return nil
		case <-deadline.C:
			return nil
		case <-ticker.C:
			if s.probeDue() {
				return errProbeDue
			}
			res, err := client.Sync(s.cfg.Spec, proto.ReSyncModePoll, s.Cookie())
			if err != nil {
				return err
			}
			s.counters.Polls.Add(1)
			if err := s.applyExchange(client, res); err != nil {
				return err
			}
		}
	}
}

// pollSteadyState re-polls the session on every tick until stop or error.
func (s *Supervisor) pollSteadyState(client *ldapnet.Client) error {
	s.setState(StatePolling)
	ticker := time.NewTicker(s.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return nil
		case <-ticker.C:
			if s.probeDue() {
				return errProbeDue
			}
			res, err := client.Sync(s.cfg.Spec, proto.ReSyncModePoll, s.Cookie())
			if err != nil {
				return err
			}
			s.counters.Polls.Add(1)
			if err := s.applyExchange(client, res); err != nil {
				return err
			}
		}
	}
}

// streamSteadyState holds a persist stream open on a dedicated connection,
// applying pushed batches. When the stream dies it falls back to one
// resume-poll on the primary connection (so nothing pushed-but-lost is
// missed) and returns, letting the outer loop re-establish the stream.
func (s *Supervisor) streamSteadyState(client *ldapnet.Client) error {
	s.setState(StateStreaming)
	ps, err := ldapnet.PersistWith(s.cfg.Dial, s.Target(), s.cfg.Spec,
		s.Cookie(), s.cfg.DialTimeout, s.cfg.IdleTimeout)
	if err != nil {
		return err
	}
	defer ps.Close()
	started := time.Now()
	probeTick := time.NewTicker(s.cfg.PollInterval)
	defer probeTick.Stop()
	var batch []resync.Update
	var batchCookie string
	var batchCSN uint64
	take := func(u ldapnet.StreamUpdate) {
		batch = append(batch, u.Update)
		if u.Cookie != "" {
			batchCookie = u.Cookie
			batchCSN = u.CSN
		}
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		// The batch cookie is adopted inside applyUpdates only after the
		// updates landed, so a checkpoint never names a sync point ahead of
		// its content.
		err := s.applyUpdates(batch, batchCookie, false)
		s.counters.StreamBatches.Add(1)
		if err == nil {
			s.noteExchange()
			s.noteWatermark(batchCSN)
		}
		batch, batchCookie, batchCSN = batch[:0], "", 0
		return err
	}
	for {
		select {
		case <-s.stop:
			return flush()
		case <-probeTick.C:
			if s.probeDue() {
				if err := flush(); err != nil {
					return err
				}
				return errProbeDue
			}
		case u, ok := <-ps.Updates:
			if !ok {
				if err := flush(); err != nil {
					return err
				}
				if serr := ps.Err(); errors.Is(serr, resync.ErrNoSuchSession) {
					return serr
				}
				// Stream died: catch up with one resume-poll before the
				// outer loop rebuilds the stream. A stream that keeps
				// dying young — the signature of the master's
				// slow-consumer demotion — earns a poll-mode cooldown
				// instead of rebuild churn.
				s.counters.Fallbacks.Add(1)
				if time.Since(started) < s.cfg.PollInterval {
					s.fastDeaths++
					if s.fastDeaths >= s.cfg.DemoteAfter {
						s.fastDeaths = 0
						s.demotedUntil = time.Now().Add(s.cfg.DemoteCooldown)
						s.counters.Demotions.Add(1)
						s.cfg.Logf("supervisor: persist stream demoted, polling for %s", s.cfg.DemoteCooldown)
					}
				} else {
					s.fastDeaths = 0
				}
				s.setState(StatePolling)
				res, err := client.Sync(s.cfg.Spec, proto.ReSyncModePoll, s.Cookie())
				if err != nil {
					return err
				}
				s.counters.Polls.Add(1)
				if err := s.applyExchange(client, res); err != nil {
					return err
				}
				return errStreamLost
			}
			take(u)
			// Drain whatever else is already buffered, then apply as one
			// batch so checkpoints amortize across a burst.
			for len(ps.Updates) > 0 {
				if u, ok := <-ps.Updates; ok {
					take(u)
				}
			}
			if err := flush(); err != nil {
				return err
			}
		}
	}
}

// errStreamLost re-enters the outer loop (reconnect + resume) after a
// persist stream died and the fallback poll succeeded.
var errStreamLost = errors.New("persist stream lost")

// applyExchange applies one exchange's result, following a chunked reload
// through its remaining exchanges on the same connection: each chunk is
// applied and checkpointed with its successor token before the next is
// requested, so a kill at any point resumes at the furthest applied chunk.
func (s *Supervisor) applyExchange(client *ldapnet.Client, res *ldapnet.SyncResult) error {
	if res.Resume == nil && s.ResumeToken().IsZero() {
		return s.apply(res)
	}
	for {
		if err := s.applyChunk(res); err != nil {
			return err
		}
		if res.Resume == nil {
			return nil
		}
		next, err := client.SyncResume(*res.Resume)
		if err != nil {
			return err
		}
		s.counters.ChunkResumes.Add(1)
		res = next
	}
}

// applyChunk lands one exchange of a resumable reload. Token adoption
// happens strictly after the chunk's updates are applied and before the
// checkpoint, so the durable token is never newer than the durable content
// — a crash between the two re-fetches one chunk, which re-applies
// idempotently.
func (s *Supervisor) applyChunk(res *ldapnet.SyncResult) error {
	if res.FullReload {
		// Chunk zero (or a monolithic restart): the transfer replaces the
		// held content from scratch.
		s.counters.FullReloads.Add(1)
		s.resetContent("")
	}
	if err := s.rep.ApplySync(s.cfg.Spec, res.Updates); err != nil {
		return fmt.Errorf("apply updates: %w", err)
	}
	s.counters.UpdatesApplied.Add(int64(len(res.Updates)))
	if res.Resume != nil {
		s.setResumeToken(*res.Resume)
	} else {
		// Final exchange: the completion cookie supersedes the token.
		s.setResumeToken(proto.ResumeToken{})
		if res.Cookie != "" {
			s.setCookie(res.Cookie)
		}
	}
	if s.cfg.OnApplied != nil {
		s.cfg.OnApplied(len(res.Updates))
	}
	if err := s.checkpoint(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if res.Resume == nil {
		s.noteExchange()
		s.noteWatermark(res.UpstreamCSN)
	}
	return nil
}

// apply installs one exchange's updates; a full reload replaces the
// content wholesale.
func (s *Supervisor) apply(res *ldapnet.SyncResult) error {
	if res.Cookie != "" {
		s.setCookie(res.Cookie)
	}
	if res.FullReload {
		s.counters.FullReloads.Add(1)
		s.resetContent(res.Cookie)
	}
	if err := s.applyUpdates(res.Updates, "", len(res.Updates) > 0); err != nil {
		return err
	}
	s.noteExchange()
	s.noteWatermark(res.UpstreamCSN)
	return nil
}

// noteWatermark reports an applied exchange's upstream commit position to
// the OnWatermark hook (zero means the supplier did not stamp one).
func (s *Supervisor) noteWatermark(csn uint64) {
	if s.cfg.OnWatermark != nil && csn > 0 {
		s.cfg.OnWatermark(csn)
	}
}

// applyUpdates applies a batch to the replica and checkpoints when
// anything changed (or when force is set). A non-empty cookie — the sync
// point a pushed batch reaches — is adopted between apply and checkpoint,
// so the durable state never claims a position its content hasn't reached.
func (s *Supervisor) applyUpdates(updates []resync.Update, cookie string, force bool) error {
	if len(updates) == 0 && !force {
		return nil
	}
	if err := s.rep.ApplySync(s.cfg.Spec, updates); err != nil {
		return fmt.Errorf("apply updates: %w", err)
	}
	s.counters.UpdatesApplied.Add(int64(len(updates)))
	if cookie != "" {
		s.setCookie(cookie)
	}
	if s.cfg.OnApplied != nil {
		s.cfg.OnApplied(len(updates))
	}
	if err := s.checkpoint(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// resetContent drops the spec's replicated content and re-registers it
// under the given cookie (Begin, full reload, stale session).
func (s *Supervisor) resetContent(cookie string) {
	s.rep.RemoveStored(s.cfg.Spec)
	s.rep.AddStored(s.cfg.Spec, cookie)
	s.setCookie(cookie)
}

// backoff sleeps the capped, jittered exponential delay for the attempt
// counter, abandoning the wait on stop.
func (s *Supervisor) backoff(attempt *int) {
	s.setState(StateBackoff)
	d := nextBackoff(s.rng, s.cfg.BackoffBase, s.cfg.BackoffMax, attempt)
	start := time.Now()
	select {
	case <-time.After(d):
	case <-s.stop:
	}
	s.counters.ObserveBackoff(time.Since(start))
}

// nextBackoff computes one capped exponential backoff delay, jittered to
// [d/2, d), and advances the attempt counter while below the cap. rng must
// be the supervisor's single source, seeded once at construction: drawing
// jitter from a source reseeded per retry would replay the seed's first
// value forever and make "jittered" replicas reconnect in lockstep — and
// would desynchronize deterministic chaos replays, which assume the nth
// backoff consumes the nth draw.
func nextBackoff(rng *rand.Rand, base, max time.Duration, attempt *int) time.Duration {
	d := base << *attempt
	if d > max || d <= 0 {
		d = max
	} else {
		*attempt++
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}
