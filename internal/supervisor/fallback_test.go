package supervisor

import (
	"sync/atomic"
	"testing"
	"time"

	"filterdir/internal/ldapnet"
	"filterdir/internal/query"
	"filterdir/internal/resync"
)

// gatedBackend serves the master store but answers new sync sessions with
// the containment rejection until allowed — a stand-in for a mid-tier whose
// stored queries do not (yet) cover the leaf's spec.
type gatedBackend struct {
	*ldapnet.StoreBackend
	allow atomic.Bool
}

func (b *gatedBackend) ReSyncBegin(q query.Query) (*resync.PollResult, error) {
	if !b.allow.Load() {
		return nil, ldapnet.ErrNotContained
	}
	return b.StoreBackend.ReSyncBegin(q)
}

// serveGated serves a gated backend over the harness store on its own
// listener (no fault injection — the rejection itself is the fault).
func serveGated(t *testing.T, h *harness) (*gatedBackend, *ldapnet.Server) {
	t.Helper()
	gb := &gatedBackend{StoreBackend: ldapnet.NewStoreBackend(h.store)}
	srv, err := ldapnet.Serve("127.0.0.1:0", gb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return gb, srv
}

// TestContainmentRejectionDiverts: the preferred upstream rejects the spec,
// so the supervisor must divert to the fallback master and converge there.
func TestContainmentRejectionDiverts(t *testing.T) {
	h := newHarness(t)
	_, gatedSrv := serveGated(t, h)

	cfg := h.config(t)
	cfg.Master = gatedSrv.Addr()
	cfg.Fallback = h.srv.Addr()
	cfg.RetryUpstreamAfter = time.Hour
	sup := startSupervisor(t, cfg)

	waitSynced(t, sup)
	if got := sup.Target(); got != h.srv.Addr() {
		t.Errorf("target = %s, want fallback %s", got, h.srv.Addr())
	}
	if got := sup.Counters().UpstreamFallbacks.Load(); got != 1 {
		t.Errorf("upstream fallbacks = %d, want 1", got)
	}
	mutate(t, h.store, 0)
	waitConverged(t, h, sup, 10*time.Second)
}

// TestStaleSessionAtUpstreamDiverts: a resume rejected with
// e-syncRefreshRequired at the preferred upstream (a mid-tier that
// restarted empty or trimmed past us) diverts to the fallback instead of
// re-beginning against the server that just lost the session.
func TestStaleSessionAtUpstreamDiverts(t *testing.T) {
	h := newHarness(t)
	gb, gatedSrv := serveGated(t, h)
	gb.allow.Store(true) // sessions allowed; the stale cookie is the fault

	cfg := h.config(t)
	cfg.Master = gatedSrv.Addr()
	cfg.Fallback = h.srv.Addr()
	cfg.RetryUpstreamAfter = time.Hour
	cfg.ResumeCookie = "sess-999@12345" // names no session at the upstream
	sup := startSupervisor(t, cfg)

	waitSynced(t, sup)
	if got := sup.Target(); got != h.srv.Addr() {
		t.Errorf("target = %s, want fallback %s", got, h.srv.Addr())
	}
	waitCounter(t, "stale sessions", 10*time.Second,
		func() int64 { return sup.Counters().StaleSessions.Load() }, 1)
	waitCounter(t, "upstream fallbacks", 10*time.Second,
		func() int64 { return sup.Counters().UpstreamFallbacks.Load() }, 1)
	waitConverged(t, h, sup, 10*time.Second)
}

// TestProbeReturnsToPreferredUpstream: after RetryUpstreamAfter on the
// fallback, the supervisor probes the preferred upstream again; once the
// upstream admits the spec the supervisor stays there for good.
func TestProbeReturnsToPreferredUpstream(t *testing.T) {
	h := newHarness(t)
	gb, gatedSrv := serveGated(t, h)

	cfg := h.config(t)
	cfg.Master = gatedSrv.Addr()
	cfg.Fallback = h.srv.Addr()
	cfg.RetryUpstreamAfter = 40 * time.Millisecond
	sup := startSupervisor(t, cfg)

	waitSynced(t, sup) // first exchange lands on the fallback
	waitCounter(t, "upstream fallbacks", 10*time.Second,
		func() int64 { return sup.Counters().UpstreamFallbacks.Load() }, 1)

	// The upstream starts admitting the spec; the next probe must stick.
	gb.allow.Store(true)
	waitCounter(t, "upstream begins", 10*time.Second,
		func() int64 { return gb.Engine.Counters().Snapshot().Begins }, 1)
	deadline := time.Now().Add(10 * time.Second)
	for sup.Target() != gatedSrv.Addr() {
		if time.Now().After(deadline) {
			t.Fatalf("target = %s, want preferred upstream %s", sup.Target(), gatedSrv.Addr())
		}
		time.Sleep(5 * time.Millisecond)
	}
	mutate(t, h.store, 0)
	waitConverged(t, h, sup, 10*time.Second)
}

// TestRetryWithoutFallbackBacksOff: with no fallback configured, a
// containment rejection keeps the supervisor retrying with backoff; once
// the upstream's stored queries grow to cover the spec it synchronizes.
func TestRetryWithoutFallbackBacksOff(t *testing.T) {
	h := newHarness(t)
	gb, gatedSrv := serveGated(t, h)

	cfg := h.config(t)
	cfg.Master = gatedSrv.Addr()
	sup := startSupervisor(t, cfg)

	waitCounter(t, "dials", 10*time.Second,
		func() int64 { return sup.Counters().Dials.Load() }, 3)
	if sup.Counters().UpstreamFallbacks.Load() != 0 {
		t.Error("diverted with no fallback configured")
	}
	gb.allow.Store(true)
	waitSynced(t, sup)
	waitConverged(t, h, sup, 10*time.Second)
}
