package supervisor

import (
	"fmt"
	"net"
	"testing"
	"time"

	"filterdir/internal/chaos"
	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/ldapnet"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
)

// newMasterStore builds a small master directory with entries matching the
// test spec (serialnumber=04*).
func newMasterStore(t *testing.T) *dit.Store {
	t.Helper()
	st, err := dit.NewStore([]string{"o=xyz"}, dit.WithIndexes("serialnumber"))
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	us := entry.New(dn.MustParse("c=us,o=xyz"))
	us.Put("objectclass", "country").Put("c", "us")
	if err := st.Add(us); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := st.Add(personEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func personEntry(i int) *entry.Entry {
	e := entry.New(dn.MustParse(fmt.Sprintf("cn=p%d,c=us,o=xyz", i)))
	e.Put("objectclass", "person", "inetOrgPerson").
		Put("cn", fmt.Sprintf("p%d", i)).Put("sn", "x").
		Put("serialNumber", fmt.Sprintf("04%02d", i))
	return e
}

// harness bundles a chaos-wrapped master and its sync engine counters.
type harness struct {
	store   *dit.Store
	backend *ldapnet.StoreBackend
	srv     *ldapnet.Server
	inj     *chaos.Injector
	spec    query.Query
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	st := newMasterStore(t)
	backend := ldapnet.NewStoreBackend(st)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(chaos.Plan{}) // faults off until the test arms them
	srv := ldapnet.ServeListener(inj.Listener(ln), backend)
	t.Cleanup(func() { _ = srv.Close() })
	return &harness{
		store:   st,
		backend: backend,
		srv:     srv,
		inj:     inj,
		spec:    query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)"),
	}
}

func (h *harness) config(t *testing.T) Config {
	t.Helper()
	return Config{
		Master:       h.srv.Addr(),
		Spec:         h.spec,
		PollInterval: 3 * time.Millisecond,
		BackoffBase:  time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		DialTimeout:  2 * time.Second,
		Seed:         1,
		Dial:         h.inj.Dial(nil),
		Logf:         t.Logf,
	}
}

func startSupervisor(t *testing.T, cfg Config) *Supervisor {
	t.Helper()
	rep, err := replica.NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	sup, err := New(cfg, rep)
	if err != nil {
		t.Fatal(err)
	}
	sup.Start()
	t.Cleanup(func() { _ = sup.Stop() })
	return sup
}

func waitSynced(t *testing.T, sup *Supervisor) {
	t.Helper()
	select {
	case <-sup.Synced():
	case <-time.After(10 * time.Second):
		t.Fatalf("supervisor never finished its first exchange (state %s)", sup.State())
	}
}

func waitConverged(t *testing.T, h *harness, sup *Supervisor, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok, why := resync.Converged(h.store, sup.rep.Store(), h.spec)
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica did not converge: %s", why)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitCounter(t *testing.T, what string, timeout time.Duration, load func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", what, load(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mutate(t *testing.T, st *dit.Store, round int) {
	t.Helper()
	// Modify an existing person, add a new one, delete another — all
	// inside the replicated content.
	d := dn.MustParse("cn=p1,c=us,o=xyz")
	if err := st.Modify(d, []dit.Mod{{Op: dit.ModReplace, Attr: "sn", Values: []string{fmt.Sprintf("r%d", round)}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(personEntry(100 + round)); err != nil {
		t.Fatal(err)
	}
	if round > 0 {
		if err := st.Delete(dn.MustParse(fmt.Sprintf("cn=p%d,c=us,o=xyz", 99+round))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConvergesUnderDropsAndRestart is the acceptance scenario: with
// connection drops injected every N I/O operations and one forced replica
// restart mid-session, the replica converges to master content using
// resume-polls — zero full reloads and exactly one Begin on the master,
// across both supervisor incarnations.
func TestConvergesUnderDropsAndRestart(t *testing.T) {
	h := newHarness(t)
	stateDir := t.TempDir()
	cfg := h.config(t)
	cfg.StateDir = stateDir

	sup := startSupervisor(t, cfg)
	waitSynced(t, sup)

	// Arm the chaos plan only after the initial Begin completed, so the
	// "one Begin" assertion is deterministic.
	h.inj.SetPlan(chaos.Plan{Seed: 7, DropEveryNOps: 30})

	for round := 0; round < 4; round++ {
		mutate(t, h.store, round)
		time.Sleep(15 * time.Millisecond)
	}
	// Make sure drops actually hit live exchanges before the restart.
	waitCounter(t, "reconnects", 10*time.Second,
		func() int64 { return sup.Counters().Reconnects.Load() }, 1)
	waitConverged(t, h, sup, 15*time.Second)

	// Forced restart mid-session: stop (checkpointing), mutate while the
	// replica is down, then bring up a fresh incarnation on the same
	// state directory.
	if err := sup.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	mutate(t, h.store, 4)

	sup2 := startSupervisor(t, cfg)
	waitSynced(t, sup2)
	if got := sup2.Counters().Resumes.Load(); got < 1 {
		t.Errorf("restarted supervisor resumed %d times, want >= 1", got)
	}
	mutate(t, h.store, 5)
	waitConverged(t, h, sup2, 15*time.Second)

	eng := h.backend.Engine.Counters().Snapshot()
	if eng.Begins != 1 {
		t.Errorf("master begins = %d, want exactly 1 (restart + drops must resume, not re-begin)", eng.Begins)
	}
	if eng.FullReloads != 0 {
		t.Errorf("master full reloads = %d, want 0", eng.FullReloads)
	}
	if eng.Polls < 2 {
		t.Errorf("master polls = %d, want >= 2 (resume-polls drive recovery)", eng.Polls)
	}
	if drops := h.inj.Stats().Drops; drops == 0 {
		t.Error("chaos injected no drops; the scenario did not exercise failure")
	}
	if got := sup2.Cookie(); got == "" {
		t.Error("supervisor lost its session cookie")
	}
}

// TestStaleSessionReBegins verifies the typed wire error path: when the
// master forgets the session, the supervisor re-Begins instead of
// retrying the dead cookie or crashing.
func TestStaleSessionReBegins(t *testing.T) {
	h := newHarness(t)
	sup := startSupervisor(t, h.config(t))
	waitSynced(t, sup)

	if err := h.backend.Engine.End(sup.Cookie()); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, "stale sessions", 10*time.Second,
		func() int64 { return sup.Counters().StaleSessions.Load() }, 1)
	waitCounter(t, "begins", 10*time.Second,
		func() int64 { return sup.Counters().Begins.Load() }, 2)

	mutate(t, h.store, 0)
	waitConverged(t, h, sup, 10*time.Second)
	if eng := h.backend.Engine.Counters().Snapshot(); eng.Begins != 2 {
		t.Errorf("master begins = %d, want 2 (initial + re-begin)", eng.Begins)
	}
}

// TestPersistFallbackToPoll verifies the stream steady state: pushed
// batches apply while the stream lives, and a dead stream falls back to a
// resume-poll without losing updates or reloading.
func TestPersistFallbackToPoll(t *testing.T) {
	h := newHarness(t)
	cfg := h.config(t)
	cfg.Mode = ModePersist
	sup := startSupervisor(t, cfg)
	waitSynced(t, sup)

	mutate(t, h.store, 0)
	waitCounter(t, "stream batches", 10*time.Second,
		func() int64 { return sup.Counters().StreamBatches.Load() }, 1)

	// Sever everything briefly: the next pushed batch hits a dropped
	// write, the stream dies, and the supervisor falls back to polling
	// before rebuilding the stream. Faults only fire on I/O, so mutate
	// after arming the plan to generate stream traffic.
	h.inj.SetPlan(chaos.Plan{DropEveryNOps: 1})
	mutate(t, h.store, 1)
	waitCounter(t, "fallbacks", 10*time.Second,
		func() int64 { return sup.Counters().Fallbacks.Load() }, 1)
	h.inj.SetPlan(chaos.Plan{})

	mutate(t, h.store, 2)
	waitConverged(t, h, sup, 10*time.Second)
	if eng := h.backend.Engine.Counters().Snapshot(); eng.Begins != 1 || eng.FullReloads != 0 {
		t.Errorf("master begins=%d full-reloads=%d, want 1 and 0", eng.Begins, eng.FullReloads)
	}
}

// TestRefusedWindowBacksOff verifies capped backoff against a master whose
// host refuses connections for a while.
func TestRefusedWindowBacksOff(t *testing.T) {
	h := newHarness(t)
	h.inj.RefuseFor(150 * time.Millisecond)
	sup := startSupervisor(t, h.config(t))
	waitSynced(t, sup)
	c := sup.Counters().Snapshot()
	if c.BackoffWaits == 0 {
		t.Error("supervisor never backed off during the refused window")
	}
	if c.Begins != 1 {
		t.Errorf("begins = %d, want 1", c.Begins)
	}
	waitConverged(t, h, sup, 10*time.Second)
}

// TestCheckpointSurvivesSpecChange: a state directory written for one spec
// must not be resumed for a different one.
func TestCheckpointSurvivesSpecChange(t *testing.T) {
	h := newHarness(t)
	stateDir := t.TempDir()
	cfg := h.config(t)
	cfg.StateDir = stateDir
	sup := startSupervisor(t, cfg)
	waitSynced(t, sup)
	if err := sup.Stop(); err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.Spec = query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=05*)")
	rep, err := replica.NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	sup2, err := New(cfg2, rep)
	if err != nil {
		t.Fatal(err)
	}
	if got := sup2.Cookie(); got != "" {
		t.Errorf("spec-mismatched checkpoint restored cookie %q, want fresh start", got)
	}
}
