package supervisor

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"filterdir/internal/ldif"
	"filterdir/internal/persist"
	"filterdir/internal/proto"
	"filterdir/internal/resync"
)

// Durable replica state is two files in the state directory, both written
// atomically (temp file + fsync + rename via internal/persist):
//
//	content.ldif — the replicated entries at the last checkpoint
//	state.json   — the session cookie and the spec key the content belongs to
//
// The state file is written after the content file, so its cookie is never
// newer than the content on disk; a crash between the two writes leaves a
// slightly-older cookie whose resume-poll re-sends updates the content
// already holds — updates apply idempotently, so that is safe.
const (
	contentFile = "content.ldif"
	stateFile   = "state.json"
)

// diskState is the JSON body of the state file.
type diskState struct {
	// Cookie resumes the upstream session.
	Cookie string `json:"cookie"`
	// SpecKey identifies the content spec the checkpoint belongs to; a
	// mismatch (the operator changed -filter) invalidates the checkpoint.
	SpecKey string `json:"spec_key"`
	// Addr is the upstream the cookie was issued by — the configured
	// Master, or the Fallback when the supervisor was diverted at
	// checkpoint time. A restart resumes against this address; an address
	// matching neither side of the current configuration invalidates the
	// checkpoint (empty means Master, for checkpoints written before
	// cascading existed).
	Addr string `json:"addr,omitempty"`
	// ResumeToken, when non-empty, is the durable text form of the
	// in-flight chunked reload's position (proto.ResumeToken.String): the
	// content file holds the chunks received so far and the restart
	// continues the transfer instead of re-Beginning. Written after the
	// content file, so the token never claims a chunk the content has not
	// durably absorbed. A token that fails to parse (torn write recovered
	// by the atomic rename, format bump) degrades to a fresh Begin.
	ResumeToken string `json:"resume_token,omitempty"`
}

// checkpoint durably records the cookie and content (no-op without a state
// directory).
func (s *Supervisor) checkpoint() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	spec := s.cfg.Spec
	spec.Attrs = nil // content entries already carry only selected attributes
	entries := s.rep.Store().MatchAll(spec)
	err := persist.WriteAtomic(filepath.Join(s.cfg.StateDir, contentFile), func(w io.Writer) error {
		return ldif.Write(w, entries...)
	})
	if err != nil {
		return err
	}
	state := diskState{Cookie: s.Cookie(), SpecKey: s.cfg.specKey, Addr: s.Target()}
	if tok := s.ResumeToken(); !tok.IsZero() {
		state.ResumeToken = tok.String()
	}
	err = persist.WriteAtomic(filepath.Join(s.cfg.StateDir, stateFile), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(state)
	})
	if err != nil {
		return err
	}
	s.counters.Checkpoints.Add(1)
	return nil
}

// restore loads a previous incarnation's checkpoint into the replica,
// returning the saved cookie, the in-flight resume token (zero when the
// checkpoint was not mid-transfer) and the upstream address they belong
// to. A missing, unreadable, spec-mismatched or unknown-address checkpoint
// restores nothing: the supervisor then starts with a fresh Begin, which
// is always correct, just more expensive. A checkpoint whose resume token
// fails to parse restores only what the cookie proves: with a live cookie
// the session resumes by poll; without one nothing is restored.
func (s *Supervisor) restore() (cookie string, tok proto.ResumeToken, addr string, restored bool, err error) {
	raw, err := os.ReadFile(filepath.Join(s.cfg.StateDir, stateFile))
	if errors.Is(err, os.ErrNotExist) {
		return "", tok, "", false, nil
	}
	if err != nil {
		return "", tok, "", false, err
	}
	var state diskState
	if err := json.Unmarshal(raw, &state); err != nil {
		s.cfg.Logf("supervisor: discarding corrupt state file: %v", err)
		return "", tok, "", false, nil
	}
	if state.ResumeToken != "" {
		tok, err = proto.ParseResumeTokenString(state.ResumeToken)
		if err != nil {
			// Torn or stale token: fall back to whatever the cookie covers.
			s.cfg.Logf("supervisor: discarding unparseable resume token: %v", err)
			tok = proto.ResumeToken{}
		}
	}
	if state.SpecKey != s.cfg.specKey || (state.Cookie == "" && tok.IsZero()) {
		return "", proto.ResumeToken{}, "", false, nil
	}
	if state.Addr != "" && state.Addr != s.cfg.Master && state.Addr != s.cfg.Fallback {
		s.cfg.Logf("supervisor: discarding checkpoint for unknown upstream %s", state.Addr)
		return "", proto.ResumeToken{}, "", false, nil
	}
	f, err := os.Open(filepath.Join(s.cfg.StateDir, contentFile))
	if errors.Is(err, os.ErrNotExist) {
		return "", proto.ResumeToken{}, "", false, nil
	}
	if err != nil {
		return "", proto.ResumeToken{}, "", false, err
	}
	defer f.Close()
	entries, err := ldif.Read(bufio.NewReader(f))
	if err != nil {
		s.cfg.Logf("supervisor: discarding corrupt content checkpoint: %v", err)
		return "", proto.ResumeToken{}, "", false, nil
	}
	updates := make([]resync.Update, 0, len(entries))
	for _, e := range entries {
		updates = append(updates, resync.Update{Action: resync.ActionAdd, DN: e.DN(), Entry: e})
	}
	s.rep.AddStored(s.cfg.Spec, state.Cookie)
	if err := s.rep.ApplySync(s.cfg.Spec, updates); err != nil {
		return "", proto.ResumeToken{}, "", false, fmt.Errorf("reload checkpointed content: %w", err)
	}
	return state.Cookie, tok, state.Addr, true, nil
}
