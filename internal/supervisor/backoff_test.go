package supervisor

import (
	"math/rand"
	"testing"
	"time"

	"filterdir/internal/query"
	"filterdir/internal/replica"
)

// TestBackoffJitterSeededOnce pins the determinism contract of the backoff
// jitter: the supervisor owns ONE random source, seeded once at
// construction, and the nth backoff consumes the nth draw. A regression
// that reseeds the source per retry would replay the seed's first draw
// forever — chaos replays would desynchronize and "jittered" replicas
// would reconnect in lockstep.
func TestBackoffJitterSeededOnce(t *testing.T) {
	const (
		base = 50 * time.Millisecond
		max  = 5 * time.Second
		n    = 64
	)
	seq := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		attempt := 0
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = nextBackoff(rng, base, max, &attempt)
		}
		return out
	}

	// Equal seeds must produce identical schedules (replay determinism).
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed schedules diverge at draw %d: %v vs %v", i, a[i], b[i])
		}
	}

	// Once the exponential delay is capped, every call computes the jitter
	// over the same interval [max/2, max); a per-retry reseed would then
	// return one constant value forever. The real sequence must keep
	// consuming fresh draws and vary.
	capped := a[len(a)-16:]
	allEqual := true
	for _, d := range capped[1:] {
		if d != capped[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		t.Fatalf("capped backoff delays are constant (%v): jitter source looks reseeded per retry", capped[0])
	}
	for i, d := range capped {
		if d < max/2 || d >= max+1 {
			t.Fatalf("capped delay %d = %v outside [max/2, max]", i, d)
		}
	}

	// Different seeds should give different schedules (the point of Seed).
	c := seq(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("seed has no effect on the backoff schedule")
	}

	// The supervisor must wire cfg.Seed into that single source: two
	// supervisors with equal seeds draw identical schedules from s.rng.
	mk := func(seed int64) *Supervisor {
		rep, err := replica.NewFilterReplica()
		if err != nil {
			t.Fatal(err)
		}
		spec := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")
		s, err := New(Config{Master: "127.0.0.1:1", Spec: spec, Seed: seed}, rep)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := mk(42), mk(42)
	a1, a2 := 0, 0
	for i := 0; i < n; i++ {
		d1 := nextBackoff(s1.rng, base, max, &a1)
		d2 := nextBackoff(s2.rng, base, max, &a2)
		if d1 != d2 {
			t.Fatalf("same-seed supervisors diverge at backoff %d: %v vs %v", i, d1, d2)
		}
	}
}
