package supervisor

import (
	"math/rand"
	"testing"
	"time"
)

// TestProbeJitterBounds: the re-probe delay is drawn uniformly from
// [0.8d, 1.2d]. A draw outside that window would either hammer the upstream
// early or let a diverted leaf linger on the fallback far past its window.
func TestProbeJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := 10 * time.Second
	lo, hi := 8*time.Second, 12*time.Second
	sawLow, sawHigh := false, false
	for i := 0; i < 10000; i++ {
		j := probeJitter(rng, d)
		if j < lo || j > hi {
			t.Fatalf("probeJitter draw %v outside [%v, %v]", j, lo, hi)
		}
		if j < 9*time.Second {
			sawLow = true
		}
		if j > 11*time.Second {
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Errorf("jitter not spread across the window: sawLow=%v sawHigh=%v", sawLow, sawHigh)
	}
}

// TestProbeJitterZeroAndNegative: non-positive intervals pass through
// unchanged (RetryUpstreamAfter <= 0 means "probe every tick" and must not
// panic rand.Int63n).
func TestProbeJitterZeroAndNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := probeJitter(rng, 0); got != 0 {
		t.Errorf("probeJitter(0) = %v", got)
	}
	if got := probeJitter(rng, -time.Second); got != -time.Second {
		t.Errorf("probeJitter(-1s) = %v", got)
	}
}

// TestProbeJitterDesynchronizesLeaves is the lockstep regression test: two
// supervisors armed at the same instant with different seeds must not draw
// identical probe schedules. Before jitter was added, a mass divert put
// every leaf on the same retry clock — they re-probed, overloaded the
// recovering upstream, re-diverted, and repeated in lockstep forever.
func TestProbeJitterDesynchronizesLeaves(t *testing.T) {
	d := 30 * time.Second
	a := rand.New(rand.NewSource(2))
	b := rand.New(rand.NewSource(3))
	distinct := false
	for i := 0; i < 8; i++ {
		if probeJitter(a, d) != probeJitter(b, d) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("two differently-seeded leaves drew identical probe schedules for 8 rounds")
	}
}

// TestArmProbeDeadlineWindow: armProbe stores a wall-clock deadline inside
// the jitter window, probeDue fires only after it passes, ProbeNow pulls it
// to the present, and disarmProbe clears it.
func TestArmProbeDeadlineWindow(t *testing.T) {
	s := &Supervisor{
		cfg:      config{Config: Config{RetryUpstreamAfter: time.Hour, Logf: t.Logf}},
		probeRng: rand.New(rand.NewSource(7)),
	}

	before := time.Now()
	s.armProbe()
	dl := time.Unix(0, s.probeDeadline.Load())
	if min, max := before.Add(48*time.Minute), time.Now().Add(72*time.Minute); dl.Before(min) || dl.After(max) {
		t.Fatalf("armed deadline %v outside jitter window [%v, %v]", dl, min, max)
	}
	if s.probeDue() {
		t.Fatal("probe due immediately after arming with a 1h interval")
	}

	s.ProbeNow()
	if !s.probeDue() {
		t.Fatal("probe not due after ProbeNow")
	}
	// ProbeNow on an already-due deadline is a no-op, not a re-push.
	d := s.probeDeadline.Load()
	s.ProbeNow()
	if got := s.probeDeadline.Load(); got != d {
		t.Errorf("ProbeNow moved an already-due deadline: %d -> %d", d, got)
	}

	s.disarmProbe()
	if s.probeDeadline.Load() != 0 || s.probeDue() {
		t.Fatal("disarmProbe did not clear the deadline")
	}
	// ProbeNow with no armed probe stays a no-op.
	s.ProbeNow()
	if s.probeDeadline.Load() != 0 {
		t.Fatal("ProbeNow armed a probe on an undiverted supervisor")
	}
}
