package dn

import "testing"

// FuzzParseDN feeds arbitrary strings to the DN parser. Property: Parse
// never panics, and every accepted DN's printed form is a fixed point —
// it re-parses to the same string and the same normalized form, so DNs
// survive a wire round trip without drifting.
func FuzzParseDN(f *testing.F) {
	f.Add("cn=e1,ou=oracle,o=xyz")
	f.Add("CN=Alice, OU = People , O=xyz")
	f.Add("cn=with\\,comma,o=xyz")
	f.Add("cn=with\\=equals,o=xyz")
	f.Add("cn=trailing\\ space\\ ,o=xyz")
	f.Add("ou=multi+cn=valued,o=xyz")
	f.Add("")
	f.Add("=novalue")
	f.Add("cn=")
	f.Add("cn=a,,o=b")

	f.Fuzz(func(t *testing.T, s string) {
		d, err := Parse(s)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		printed := d.String()
		d2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed DN %q (from %q) does not re-parse: %v", printed, s, err)
		}
		if again := d2.String(); again != printed {
			t.Fatalf("print not a fixed point: %q -> %q (input %q)", printed, again, s)
		}
		if d2.Norm() != d.Norm() {
			t.Fatalf("norm drifted across round trip: %q -> %q (input %q)", d.Norm(), d2.Norm(), s)
		}
	})
}
