package dn

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		depth   int
		str     string
		wantErr bool
	}{
		{name: "root", in: "", depth: 0, str: ""},
		{name: "root spaces", in: "   ", depth: 0, str: ""},
		{name: "single", in: "o=xyz", depth: 1, str: "o=xyz"},
		{name: "two", in: "c=us,o=xyz", depth: 2, str: "c=us,o=xyz"},
		{name: "person", in: "cn=John Doe,ou=research,c=us,o=xyz", depth: 4, str: "cn=John Doe,ou=research,c=us,o=xyz"},
		{name: "space around eq", in: "cn = John , o = xyz", depth: 2, str: "cn=John,o=xyz"},
		{name: "escaped comma", in: `cn=Doe\, John,o=xyz`, depth: 2, str: `cn=Doe\, John,o=xyz`},
		{name: "escaped hex", in: `cn=J\4fhn,o=xyz`, depth: 2, str: "cn=JOhn,o=xyz"},
		{name: "semicolon separator", in: "cn=a;o=b", depth: 2, str: "cn=a,o=b"},
		{name: "numeric oid attr", in: "2.5.4.3=val", depth: 1, str: "2.5.4.3=val"},
		{name: "missing equals", in: "cnJohn,o=xyz", wantErr: true},
		{name: "empty value", in: "cn=,o=xyz", wantErr: true},
		{name: "bad attr", in: "c n=x", wantErr: true},
		{name: "trailing backslash", in: `cn=x\`, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := Parse(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("Parse(%q) succeeded, want error", tt.in)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.in, err)
			}
			if d.Depth() != tt.depth {
				t.Errorf("depth = %d, want %d", d.Depth(), tt.depth)
			}
			if got := d.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestEqualCaseInsensitive(t *testing.T) {
	a := MustParse("CN=John Doe,OU=Research,O=XYZ")
	b := MustParse("cn=john doe,ou=research,o=xyz")
	if !a.Equal(b) {
		t.Errorf("case-insensitive DNs should be equal: %q vs %q", a.Norm(), b.Norm())
	}
	c := MustParse("cn=john  doe,ou=research,o=xyz")
	if !a.Equal(c) {
		t.Errorf("internal space folding should make DNs equal: %q vs %q", a.Norm(), c.Norm())
	}
}

func TestIsSuffix(t *testing.T) {
	root := Root
	org := MustParse("o=xyz")
	country := MustParse("c=us,o=xyz")
	person := MustParse("cn=John Doe,ou=research,c=us,o=xyz")
	other := MustParse("c=in,o=xyz")

	tests := []struct {
		name string
		a, b DN
		want bool
	}{
		{"root suffix of all", root, person, true},
		{"root suffix of root", root, root, true},
		{"self suffix", country, country, true},
		{"ancestor", org, person, true},
		{"grandparent", country, person, true},
		{"not ancestor", other, person, false},
		{"descendant is not suffix", person, country, false},
		{"sibling", country, other, false},
	}
	for _, tt := range tests {
		if got := tt.a.IsSuffix(tt.b); got != tt.want {
			t.Errorf("%s: IsSuffix(%q, %q) = %v, want %v", tt.name, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestIsSuffixEscapedSeparators(t *testing.T) {
	// A value containing ",o=y" must not be confused with the hierarchy.
	tricky := MustParse(`cn=x\,o=y`)
	base := MustParse("o=y")
	if base.IsSuffix(tricky) {
		t.Error("o=y must not be a suffix of the single-RDN DN cn=x\\,o=y")
	}
	if tricky.Depth() != 1 {
		t.Errorf("depth = %d, want 1", tricky.Depth())
	}
}

func TestParentChild(t *testing.T) {
	person := MustParse("cn=John Doe,ou=research,c=us,o=xyz")
	parent, ok := person.Parent()
	if !ok || parent.String() != "ou=research,c=us,o=xyz" {
		t.Fatalf("Parent = %q, ok=%v", parent, ok)
	}
	if !parent.IsParent(person) {
		t.Error("IsParent(parent, person) = false")
	}
	grand, _ := parent.Parent()
	if grand.IsParent(person) {
		t.Error("grandparent must not be IsParent")
	}
	back := parent.Child(RDN{Attr: "CN", Value: "John Doe"})
	if !back.Equal(person) {
		t.Errorf("Child round trip = %q, want %q", back, person)
	}
	if _, ok := Root.Parent(); ok {
		t.Error("root must not have a parent")
	}
	if _, ok := Root.Leaf(); ok {
		t.Error("root must not have a leaf RDN")
	}
	leaf, ok := person.Leaf()
	if !ok || leaf.Attr != "cn" || leaf.Value != "John Doe" {
		t.Errorf("Leaf = %+v, ok=%v", leaf, ok)
	}
}

func TestRelativeDepth(t *testing.T) {
	org := MustParse("o=xyz")
	person := MustParse("cn=a,ou=b,o=xyz")
	if d, ok := org.RelativeDepth(person); !ok || d != 2 {
		t.Errorf("RelativeDepth = %d, %v; want 2, true", d, ok)
	}
	if d, ok := person.RelativeDepth(person); !ok || d != 0 {
		t.Errorf("self RelativeDepth = %d, %v; want 0, true", d, ok)
	}
	if _, ok := person.RelativeDepth(org); ok {
		t.Error("RelativeDepth of non-descendant must report false")
	}
}

func TestRename(t *testing.T) {
	oldBase := MustParse("ou=research,o=xyz")
	newBase := MustParse("ou=labs,o=xyz")
	entry := MustParse("cn=a,ou=g1,ou=research,o=xyz")
	got, err := Rename(entry, oldBase, newBase)
	if err != nil {
		t.Fatal(err)
	}
	want := "cn=a,ou=g1,ou=labs,o=xyz"
	if got.String() != want {
		t.Errorf("Rename = %q, want %q", got, want)
	}
	// Renaming the base itself yields the new base.
	got, err = Rename(oldBase, oldBase, newBase)
	if err != nil || !got.Equal(newBase) {
		t.Errorf("Rename(base) = %q, %v; want %q", got, err, newBase)
	}
	if _, err := Rename(MustParse("cn=z,o=other"), oldBase, newBase); err == nil {
		t.Error("Rename outside base must error")
	}
}

func TestEscapingRoundTrip(t *testing.T) {
	values := []string{
		"plain",
		"has,comma",
		"has=equals",
		"has+plus",
		"#leading hash",
		" leading space",
		"trailing space ",
		`back\slash`,
		"quote\"inside",
		"semi;colon",
		"angle<bra>ckets",
	}
	for _, v := range values {
		d := New(RDN{Attr: "cn", Value: v}, RDN{Attr: "o", Value: "xyz"})
		rt, err := Parse(d.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", d.String(), err)
			continue
		}
		if !rt.Equal(d) {
			t.Errorf("round trip of %q: got %q, want %q", v, rt.Norm(), d.Norm())
		}
		leaf, _ := rt.Leaf()
		if leaf.Value != v {
			t.Errorf("value round trip: got %q, want %q", leaf.Value, v)
		}
	}
}

// printable ASCII value bytes for the property test, excluding nothing:
// escaping must handle every printable character.
func clampValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= ' ' && r < 127 {
			b.WriteRune(r)
		}
	}
	v := strings.TrimSpace(b.String())
	if v == "" {
		return "x"
	}
	return v
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	f := func(raw1, raw2 string) bool {
		v1, v2 := clampValue(raw1), clampValue(raw2)
		d := New(RDN{Attr: "cn", Value: v1}, RDN{Attr: "ou", Value: v2}, RDN{Attr: "o", Value: "xyz"})
		rt, err := Parse(d.String())
		if err != nil {
			t.Logf("parse error for %q: %v", d.String(), err)
			return false
		}
		return rt.Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSuffixTransitivity(t *testing.T) {
	// If a is a suffix of b and b is a suffix of c then a is a suffix of c.
	f := func(n1, n2, n3 uint8) bool {
		mk := func(n uint8) DN {
			d := Root
			for i := 0; i < int(n%6); i++ {
				d = d.Child(RDN{Attr: "ou", Value: strings.Repeat("x", i+1)})
			}
			return d
		}
		a, b := mk(n1), mk(n2)
		c := b
		for i := 0; i < int(n3%4); i++ {
			c = c.Child(RDN{Attr: "cn", Value: "leaf"})
		}
		if a.IsSuffix(b) && b.IsSuffix(c) && !a.IsSuffix(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormStability(t *testing.T) {
	d1 := MustParse("CN=A B,o=XYZ")
	d2 := New(RDN{Attr: "cn", Value: "a  b"}, RDN{Attr: "O", Value: "xyz"})
	if d1.Norm() != d2.Norm() {
		t.Errorf("Norm mismatch: %q vs %q", d1.Norm(), d2.Norm())
	}
}

func BenchmarkParse(b *testing.B) {
	s := "cn=John Doe,ou=research,c=us,o=xyz"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIsSuffix(b *testing.B) {
	base := MustParse("c=us,o=xyz")
	person := MustParse("cn=John Doe,ou=research,c=us,o=xyz")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !base.IsSuffix(person) {
			b.Fatal("expected suffix")
		}
	}
}

func TestSameSpelling(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"cn=Ann,o=xyz", "cn=Ann,o=xyz", true},
		{"cn=Ann,o=xyz", "cn=ann,o=xyz", false}, // Equal, but spelled differently
		{"cn=Ann,o=xyz", "cn=Ann,o=abc", false},
		{"cn=Ann,o=xyz", "cn=Ann", false},
		{"", "", true},
		{"", "o=xyz", false},
	}
	for _, tc := range cases {
		a, b := MustParse(tc.a), MustParse(tc.b)
		if got := a.SameSpelling(b); got != tc.want {
			t.Errorf("SameSpelling(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		// SameSpelling is exactly String-equality, allocation-free.
		if got, strEq := a.SameSpelling(b), a.String() == b.String(); got != strEq {
			t.Errorf("SameSpelling(%q, %q) = %v disagrees with String comparison %v",
				tc.a, tc.b, got, strEq)
		}
	}
}
