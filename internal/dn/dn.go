// Package dn implements parsing, normalization and hierarchy operations for
// LDAP distinguished names (a practical subset of RFC 2253).
//
// A distinguished name (DN) identifies an entry in the Directory Information
// Tree (DIT). It is written leaf-first: the DN of an entry is its relative DN
// (RDN) followed by the DN of its parent, e.g.
//
//	cn=John Doe,ou=research,c=us,o=xyz
//
// The root of the DIT has the empty ("null") DN.
//
// DNs in this package are immutable after construction; all operations return
// new values. Attribute types are normalized to lower case and attribute
// values are compared case-insensitively, matching the caseIgnoreMatch rule
// that governs the vast majority of naming attributes.
package dn

import (
	"errors"
	"fmt"
	"strings"
)

// RDN is a single relative distinguished name component, e.g. "cn=John Doe".
// Multi-valued RDNs (a+b=c) are intentionally not supported; they are rare in
// practice and the paper's directory does not use them.
type RDN struct {
	// Attr is the normalized (lower-case) attribute type, e.g. "cn".
	Attr string
	// Value is the attribute value with RFC 2253 escapes resolved. Original
	// case is preserved for display; comparisons are case-insensitive.
	Value string
}

// String renders the RDN with RFC 2253 escaping applied to the value.
func (r RDN) String() string {
	return r.Attr + "=" + escapeValue(r.Value)
}

// Equal reports whether two RDNs are equivalent under case-insensitive value
// matching.
func (r RDN) Equal(o RDN) bool {
	return r.Attr == o.Attr && strings.EqualFold(foldSpaces(r.Value), foldSpaces(o.Value))
}

// SameSpelling reports whether two DNs have identical presentation forms —
// the allocation-free equivalent of d.String() == o.String(). Equal DNs can
// differ in spelling (value case, escaped spacing); spelling-sensitive
// callers (e.g. change classification deciding whether a rename is visible)
// use this on hot paths instead of rendering both strings.
func (d DN) SameSpelling(o DN) bool {
	if len(d.rdns) != len(o.rdns) {
		return false
	}
	for i, r := range d.rdns {
		if r.Attr != o.rdns[i].Attr || r.Value != o.rdns[i].Value {
			return false
		}
	}
	return true
}

// DN is a parsed distinguished name. The zero value is the root ("null") DN.
// RDNs are stored leaf-first, mirroring the string representation: for
// "cn=a,o=b", RDNs[0] is cn=a and RDNs[1] is o=b.
type DN struct {
	rdns []RDN
	// norm is the normalized form used for equality and map keys.
	norm string
}

// Root is the null DN naming the root of the DIT.
var Root = DN{}

// ErrInvalidDN reports a malformed distinguished name string.
var ErrInvalidDN = errors.New("invalid DN")

// New builds a DN from leaf-first RDNs. Attribute types are normalized to
// lower case.
func New(rdns ...RDN) DN {
	if len(rdns) == 0 {
		return DN{}
	}
	cp := make([]RDN, len(rdns))
	for i, r := range rdns {
		cp[i] = RDN{Attr: strings.ToLower(strings.TrimSpace(r.Attr)), Value: r.Value}
	}
	return DN{rdns: cp, norm: normalize(cp)}
}

// Parse parses an RFC 2253 style DN string. The empty string parses to the
// root DN. Supported escapes inside values: backslash followed by one of
// ",=+<>#;\\\"" or a space, and backslash followed by two hex digits.
func Parse(s string) (DN, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return DN{}, nil
	}
	parts, err := splitComponents(s)
	if err != nil {
		return DN{}, err
	}
	rdns := make([]RDN, 0, len(parts))
	for _, p := range parts {
		r, err := parseRDN(p)
		if err != nil {
			return DN{}, err
		}
		rdns = append(rdns, r)
	}
	return DN{rdns: rdns, norm: normalize(rdns)}, nil
}

// MustParse is Parse that panics on error; intended for tests and constants.
func MustParse(s string) DN {
	d, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return d
}

// String renders the DN in RFC 2253 form with the original value case.
func (d DN) String() string {
	if len(d.rdns) == 0 {
		return ""
	}
	var b strings.Builder
	for i, r := range d.rdns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(r.String())
	}
	return b.String()
}

// Norm returns the normalized form (lower-cased attribute types and values,
// single spacing) suitable for use as a map key. Two DNs are Equal exactly
// when their Norm strings are identical.
func (d DN) Norm() string { return d.norm }

// IsRoot reports whether d is the null DN.
func (d DN) IsRoot() bool { return len(d.rdns) == 0 }

// Depth returns the number of RDN components (0 for the root).
func (d DN) Depth() int { return len(d.rdns) }

// RDNs returns a copy of the leaf-first RDN components.
func (d DN) RDNs() []RDN {
	out := make([]RDN, len(d.rdns))
	copy(out, d.rdns)
	return out
}

// Leaf returns the leftmost (leaf) RDN. Calling Leaf on the root DN returns a
// zero RDN and false.
func (d DN) Leaf() (RDN, bool) {
	if len(d.rdns) == 0 {
		return RDN{}, false
	}
	return d.rdns[0], true
}

// Equal reports whether two DNs name the same entry.
func (d DN) Equal(o DN) bool { return d.norm == o.norm }

// Parent returns the DN with the leaf RDN removed. The parent of the root is
// the root itself with ok=false.
func (d DN) Parent() (DN, bool) {
	if len(d.rdns) == 0 {
		return DN{}, false
	}
	rest := d.rdns[1:]
	return DN{rdns: rest, norm: normalize(rest)}, true
}

// Child returns the DN formed by prefixing an RDN to d.
func (d DN) Child(r RDN) DN {
	rdns := make([]RDN, 0, len(d.rdns)+1)
	rdns = append(rdns, RDN{Attr: strings.ToLower(strings.TrimSpace(r.Attr)), Value: r.Value})
	rdns = append(rdns, d.rdns...)
	return DN{rdns: rdns, norm: normalize(rdns)}
}

// IsSuffix reports whether d is an ancestor-or-self of o; that is, whether
// the DIT region rooted at d contains o. The root DN is a suffix of every DN.
// This matches the paper's isSuffix(a, b): TRUE when a is an ancestor of b
// (we additionally treat a DN as a suffix of itself, which is what both the
// subtree-containment algorithm and naming-context resolution require).
func (d DN) IsSuffix(o DN) bool {
	n, m := len(d.rdns), len(o.rdns)
	if n > m {
		return false
	}
	// Compare the trailing n components; string suffix checks are unsafe in
	// the presence of escaped separators inside values.
	for i := 0; i < n; i++ {
		if !d.rdns[n-1-i].Equal(o.rdns[m-1-i]) {
			return false
		}
	}
	return true
}

// IsStrictSuffix reports whether d is a proper ancestor of o (d != o).
func (d DN) IsStrictSuffix(o DN) bool {
	return len(d.rdns) < len(o.rdns) && d.IsSuffix(o)
}

// IsParent reports whether d is the immediate parent of o.
func (d DN) IsParent(o DN) bool {
	return len(o.rdns) == len(d.rdns)+1 && d.IsSuffix(o)
}

// RelativeDepth returns the number of levels from ancestor d down to o, and
// ok=false when d is not a suffix of o. RelativeDepth(d, d) is 0.
func (d DN) RelativeDepth(o DN) (int, bool) {
	if !d.IsSuffix(o) {
		return 0, false
	}
	return len(o.rdns) - len(d.rdns), true
}

// Rename returns the DN obtained by replacing the subtree prefix: o must be
// under oldBase; the portion of o below oldBase is re-rooted under newBase.
// Used to implement modifyDN with subtree moves.
func Rename(o, oldBase, newBase DN) (DN, error) {
	rel, ok := oldBase.RelativeDepth(o)
	if !ok {
		return DN{}, fmt.Errorf("%w: %q is not under %q", ErrInvalidDN, o.String(), oldBase.String())
	}
	rdns := make([]RDN, 0, rel+len(newBase.rdns))
	rdns = append(rdns, o.rdns[:rel]...)
	rdns = append(rdns, newBase.rdns...)
	return DN{rdns: rdns, norm: normalize(rdns)}, nil
}

// normalize produces the canonical comparison form.
func normalize(rdns []RDN) string {
	if len(rdns) == 0 {
		return ""
	}
	var b strings.Builder
	for i, r := range rdns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strings.ToLower(r.Attr))
		b.WriteByte('=')
		b.WriteString(strings.ToLower(foldSpaces(escapeValue(r.Value))))
	}
	return b.String()
}

// foldSpaces trims leading/trailing spaces and collapses internal runs of
// spaces, per the caseIgnoreMatch normalization rules.
func foldSpaces(s string) string {
	fields := strings.Fields(s)
	return strings.Join(fields, " ")
}

// splitComponents splits a DN string on unescaped commas (and semicolons,
// which RFC 2253 allows as a legacy separator).
func splitComponents(s string) ([]string, error) {
	var parts []string
	var cur strings.Builder
	escaped := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			cur.WriteByte('\\')
			cur.WriteByte(c)
			escaped = false
		case c == '\\':
			escaped = true
		case c == ',' || c == ';':
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if escaped {
		return nil, fmt.Errorf("%w: trailing backslash in %q", ErrInvalidDN, s)
	}
	parts = append(parts, cur.String())
	return parts, nil
}

// parseRDN parses a single "attr=value" component.
func parseRDN(s string) (RDN, error) {
	eq := indexUnescaped(s, '=')
	if eq < 0 {
		return RDN{}, fmt.Errorf("%w: missing '=' in RDN %q", ErrInvalidDN, s)
	}
	attr := strings.ToLower(strings.TrimSpace(s[:eq]))
	if attr == "" || !validAttrType(attr) {
		return RDN{}, fmt.Errorf("%w: bad attribute type in RDN %q", ErrInvalidDN, s)
	}
	val, err := unescapeValue(trimValueSpace(s[eq+1:]))
	if err != nil {
		return RDN{}, fmt.Errorf("%w: bad value in RDN %q: %v", ErrInvalidDN, s, err)
	}
	if val == "" {
		return RDN{}, fmt.Errorf("%w: empty value in RDN %q", ErrInvalidDN, s)
	}
	return RDN{Attr: attr, Value: val}, nil
}

// trimValueSpace trims unescaped leading and trailing spaces from a raw
// (still-escaped) attribute value. A trailing space preceded by an odd number
// of backslashes is escaped and must be kept.
func trimValueSpace(s string) string {
	s = strings.TrimLeft(s, " ")
	for len(s) > 0 && s[len(s)-1] == ' ' {
		// Count backslashes immediately before the final space.
		n := 0
		for i := len(s) - 2; i >= 0 && s[i] == '\\'; i-- {
			n++
		}
		if n%2 == 1 {
			break // escaped space: keep it
		}
		s = s[:len(s)-1]
	}
	return s
}

func indexUnescaped(s string, c byte) int {
	escaped := false
	for i := 0; i < len(s); i++ {
		switch {
		case escaped:
			escaped = false
		case s[i] == '\\':
			escaped = true
		case s[i] == c:
			return i
		}
	}
	return -1
}

// validAttrType accepts LDAP attribute descriptors: a letter followed by
// letters, digits, and hyphens, or a numeric OID.
func validAttrType(s string) bool {
	if s == "" {
		return false
	}
	if s[0] >= '0' && s[0] <= '9' {
		// numeric OID form: digits and dots
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c != '.' && (c < '0' || c > '9') {
				return false
			}
		}
		return true
	}
	if !isAlpha(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !isAlpha(c) && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

const specialChars = ",=+<>#;\"\\"

// escapeValue applies RFC 2253 escaping to an attribute value.
func escapeValue(s string) string {
	if s == "" {
		return s
	}
	needs := strings.ContainsAny(s, specialChars) ||
		s[0] == ' ' || s[0] == '#' || s[len(s)-1] == ' '
	if !needs {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if strings.IndexByte(specialChars, c) >= 0 ||
			(c == ' ' && (i == 0 || i == len(s)-1)) ||
			(c == '#' && i == 0) {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	return b.String()
}

// unescapeValue resolves RFC 2253 escapes in an attribute value.
func unescapeValue(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		if i+1 >= len(s) {
			return "", errors.New("trailing backslash")
		}
		n := s[i+1]
		if isHex(n) && i+2 < len(s) && isHex(s[i+2]) {
			b.WriteByte(hexVal(n)<<4 | hexVal(s[i+2]))
			i += 2
			continue
		}
		b.WriteByte(n)
		i++
	}
	return b.String(), nil
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	default:
		return c - 'A' + 10
	}
}
