package selection

import (
	"sort"

	"filterdir/internal/query"
)

// EvolutionSelector is a simplified implementation of the evolution /
// revolution algorithm of Kapitskaia, Ng and Srivastava (EDBT 2000), kept
// as a baseline for the ablation benchmarks. It maintains benefit values
// (exponentially decayed hit counts) for the stored ("actual") list and a
// candidate list:
//
//   - evolution: on every query, if some candidate's benefit density
//     exceeds the worst stored filter's by the swap margin, they exchange
//     places immediately — causing the frequent stored-set churn the paper
//     deems unsuitable for replication;
//   - revolution: when the candidates' aggregate benefit exceeds the
//     actuals' by the revolution margin, both lists are combined and the
//     best filters re-selected under the budget.
type EvolutionSelector struct {
	gen    *Generalizer
	SizeOf func(query.Query) int
	Budget int
	// Decay multiplies all benefits each query (temporal weighting).
	Decay float64
	// SwapMargin is the density advantage a candidate needs to evolve in.
	SwapMargin float64
	// RevolutionMargin triggers a full re-selection when the candidate
	// aggregate benefit exceeds the actuals' by this factor.
	RevolutionMargin float64
	// Contains, when non-nil, proves semantic containment (inner ⊆ outer)
	// so observations credit a stored filter that covers the candidate
	// instead of growing a duplicate candidate (see Selector.Contains).
	// The live tier control plane (internal/tierctl) sets it to the
	// containment checker's QueryContains.
	Contains func(inner, outer query.Query) bool
	// AdoptThreshold is the minimum benefit a candidate needs for the live
	// Evolve path to adopt it into spare budget without evicting anything
	// (0 means 1.0 — one undecayed rejection). The offline Observe path
	// never adopts into spare budget, so the baseline is unaffected.
	AdoptThreshold float64

	actual     map[string]*Candidate
	candidates map[string]*Candidate
	benefit    map[string]float64
	sizeCache  map[string]int
	// pinned keys are exempt from eviction: a tier's operator-configured
	// base specs stay replicated no matter how their benefit decays.
	pinned map[string]bool

	// Evolutions and Revolutions count stored-set reorganizations — the
	// churn statistic the ablation reports.
	Evolutions  int
	Revolutions int
}

// NewEvolutionSelector builds the baseline with the parameters used in the
// benchmarks.
func NewEvolutionSelector(gen *Generalizer, sizeOf func(query.Query) int, budget int) *EvolutionSelector {
	return &EvolutionSelector{
		gen:              gen,
		SizeOf:           sizeOf,
		Budget:           budget,
		Decay:            0.95,
		SwapMargin:       1.2,
		RevolutionMargin: 1.5,
		actual:           make(map[string]*Candidate),
		candidates:       make(map[string]*Candidate),
		benefit:          make(map[string]float64),
		sizeCache:        make(map[string]int),
	}
}

// Observe records a user query and returns a non-nil Delta whenever the
// stored set changed (evolution or revolution).
func (s *EvolutionSelector) Observe(q query.Query) *Delta {
	for k := range s.benefit {
		s.benefit[k] *= s.Decay
	}
	for _, cand := range s.gen.Generalize(q) {
		s.credit(cand)
	}

	if d := s.maybeRevolution(); d != nil {
		return d
	}
	return s.maybeEvolution()
}

// credit records one benefit unit for cand: against the exact actual
// filter, an actual filter proven (via Contains) to cover it, or the
// candidate list.
func (s *EvolutionSelector) credit(cand query.Query) {
	key := cand.Key()
	if _, ok := s.actual[key]; ok {
		s.benefit[key]++
		return
	}
	if s.Contains != nil {
		for k, c := range s.actual {
			if s.Contains(cand, c.Query) {
				s.benefit[k]++
				return
			}
		}
	}
	c, ok := s.candidates[key]
	if !ok {
		c = &Candidate{Query: cand}
		s.candidates[key] = c
		s.ensureSize(c)
	}
	s.benefit[key]++
}

func (s *EvolutionSelector) density(key string, size int) float64 {
	if size <= 0 {
		return s.benefit[key]
	}
	return s.benefit[key] / float64(size)
}

func (s *EvolutionSelector) maybeEvolution() *Delta {
	if len(s.actual) == 0 {
		return s.maybeAdoptFirst()
	}
	// Worst stored filter by density (pinned filters are not evictable).
	var worstKey string
	worst := -1.0
	for k, c := range s.actual {
		if s.pinned[k] {
			continue
		}
		d := s.density(k, c.Size)
		if worst < 0 || d < worst {
			worst, worstKey = d, k
		}
	}
	if worstKey == "" {
		return nil
	}
	// Best candidate by density that fits after removing the worst.
	var bestKey string
	best := -1.0
	usedWithoutWorst := s.usedBudget() - s.actual[worstKey].Size
	for k, c := range s.candidates {
		if c.Size <= 0 || usedWithoutWorst+c.Size > s.Budget {
			continue
		}
		if d := s.density(k, c.Size); d > best {
			best, bestKey = d, k
		}
	}
	if bestKey == "" || best < worst*s.SwapMargin {
		return nil
	}
	s.Evolutions++
	out := &Delta{
		Add:    []query.Query{s.candidates[bestKey].Query},
		Remove: []query.Query{s.actual[worstKey].Query},
	}
	s.candidates[worstKey] = s.actual[worstKey]
	s.actual[bestKey] = s.candidates[bestKey]
	s.actual[bestKey].Stored = true
	delete(s.actual, worstKey)
	delete(s.candidates, bestKey)
	return out
}

// maybeAdoptFirst seeds the stored set greedily when it is empty.
func (s *EvolutionSelector) maybeAdoptFirst() *Delta {
	var bestKey string
	best := -1.0
	for k, c := range s.candidates {
		if c.Size <= 0 || c.Size > s.Budget {
			continue
		}
		if d := s.density(k, c.Size); d > best {
			best, bestKey = d, k
		}
	}
	if bestKey == "" {
		return nil
	}
	s.Evolutions++
	c := s.candidates[bestKey]
	c.Stored = true
	s.actual[bestKey] = c
	delete(s.candidates, bestKey)
	return &Delta{Add: []query.Query{c.Query}}
}

func (s *EvolutionSelector) maybeRevolution() *Delta {
	var actualBenefit, candBenefit float64
	for k := range s.actual {
		actualBenefit += s.benefit[k]
	}
	for k := range s.candidates {
		candBenefit += s.benefit[k]
	}
	if len(s.actual) == 0 || candBenefit <= actualBenefit*s.RevolutionMargin {
		return nil
	}
	s.Revolutions++

	type scored struct {
		key string
		c   *Candidate
		d   float64
	}
	var all []scored
	for k, c := range s.actual {
		all = append(all, scored{k, c, s.density(k, c.Size)})
	}
	for k, c := range s.candidates {
		s.ensureSize(c)
		all = append(all, scored{k, c, s.density(k, c.Size)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].key < all[j].key
	})
	chosen := make(map[string]*Candidate)
	used := 0
	// Pinned filters are selected unconditionally, charged against the
	// budget first; the greedy pass fills the remainder.
	for k, c := range s.actual {
		if s.pinned[k] {
			chosen[k] = c
			used += c.Size
		}
	}
	for _, sc := range all {
		if _, have := chosen[sc.key]; have {
			continue
		}
		if sc.c.Size <= 0 || used+sc.c.Size > s.Budget {
			continue
		}
		chosen[sc.key] = sc.c
		used += sc.c.Size
	}
	delta := &Delta{}
	for k, c := range s.actual {
		if _, keep := chosen[k]; !keep {
			delta.Remove = append(delta.Remove, c.Query)
			c.Stored = false
			s.candidates[k] = c
		}
	}
	for k, c := range chosen {
		if _, have := s.actual[k]; !have {
			delta.Add = append(delta.Add, c.Query)
			delete(s.candidates, k)
		}
		c.Stored = true
	}
	s.actual = chosen
	sortQueries(delta.Add)
	sortQueries(delta.Remove)
	if len(delta.Add) == 0 && len(delta.Remove) == 0 {
		return nil
	}
	return delta
}

func (s *EvolutionSelector) usedBudget() int {
	n := 0
	for _, c := range s.actual {
		n += c.Size
	}
	return n
}

func (s *EvolutionSelector) ensureSize(c *Candidate) {
	if c.Size > 0 {
		return
	}
	key := c.Query.Key()
	if sz, ok := s.sizeCache[key]; ok {
		c.Size = sz
		return
	}
	sz := 0
	if s.SizeOf != nil {
		sz = s.SizeOf(c.Query)
	}
	s.sizeCache[key] = sz
	c.Size = sz
}

// StoredSet returns the current actual list.
func (s *EvolutionSelector) StoredSet() []query.Query {
	out := make([]query.Query, 0, len(s.actual))
	for _, c := range s.actual {
		out = append(out, c.Query)
	}
	sortQueries(out)
	return out
}
