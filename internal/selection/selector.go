package selection

import (
	"sort"

	"filterdir/internal/query"
)

// Candidate is a filter being considered for replication, with its benefit
// statistics: hits since the last revolution and the estimated number of
// entries it matches.
type Candidate struct {
	Query query.Query
	Hits  uint64
	Size  int
	// Stored marks candidates currently replicated.
	Stored bool
}

// Ratio is the benefit/size selection key.
func (c *Candidate) Ratio() float64 {
	if c.Size <= 0 {
		return float64(c.Hits)
	}
	return float64(c.Hits) / float64(c.Size)
}

// Delta is a revolution's outcome: the filters to start and stop
// replicating.
type Delta struct {
	Add    []query.Query
	Remove []query.Query
}

// Selector implements the periodic benefit/size selection of Section 6.2:
// hit statistics are maintained for candidate filters (generalizations of
// observed user queries), and every Interval queries a revolution selects
// the filter set with the best benefit-to-size ratios under the replica's
// entry budget.
type Selector struct {
	gen *Generalizer
	// SizeOf estimates the number of entries matching a candidate query
	// (typically a master-side count). Results are cached.
	SizeOf func(query.Query) int
	// Budget is the replica entry budget.
	Budget int
	// Interval is the revolution interval R in queries.
	Interval int
	// Contains, when non-nil, proves semantic containment (inner ⊆ outer).
	// Observe then credits a stored filter that covers a candidate instead
	// of growing a duplicate candidate for content already replicated —
	// without it only exact key matches credit the stored set.
	Contains func(inner, outer query.Query) bool

	counter    int
	candidates map[string]*Candidate
	stored     map[string]*Candidate
	sizeCache  map[string]int
}

// NewSelector builds a selector.
func NewSelector(gen *Generalizer, sizeOf func(query.Query) int, budget, interval int) *Selector {
	return &Selector{
		gen:        gen,
		SizeOf:     sizeOf,
		Budget:     budget,
		Interval:   interval,
		candidates: make(map[string]*Candidate),
		stored:     make(map[string]*Candidate),
		sizeCache:  make(map[string]int),
	}
}

// Observe records one user query: every candidate filter that would have
// answered it gains a hit, as does the stored filter that actually answered
// it. It returns a non-nil Delta when the revolution interval elapses.
func (s *Selector) Observe(q query.Query) *Delta {
	for _, cand := range s.gen.Generalize(q) {
		s.credit(cand)
	}
	s.counter++
	if s.Interval > 0 && s.counter >= s.Interval {
		s.counter = 0
		return s.revolution()
	}
	return nil
}

// credit records one hit for cand: against the exact stored filter, against
// a stored filter proven (via Contains) to cover it, or — when nothing
// replicated covers it — against the candidate list.
func (s *Selector) credit(cand query.Query) {
	key := cand.Key()
	if st, ok := s.stored[key]; ok {
		st.Hits++
		return
	}
	if s.Contains != nil {
		for _, st := range s.stored {
			if s.Contains(cand, st.Query) {
				st.Hits++
				return
			}
		}
	}
	c, ok := s.candidates[key]
	if !ok {
		c = &Candidate{Query: cand}
		s.candidates[key] = c
	}
	c.Hits++
}

// ForceRevolution runs a revolution immediately (used to seed the initial
// stored set after a warm-up pass).
func (s *Selector) ForceRevolution() *Delta {
	s.counter = 0
	return s.revolution()
}

// revolution combines stored and candidate lists and greedily selects by
// benefit/size ratio under the budget, per Section 6.2.
func (s *Selector) revolution() *Delta {
	all := make([]*Candidate, 0, len(s.candidates)+len(s.stored))
	for _, c := range s.stored {
		s.ensureSize(c)
		all = append(all, c)
	}
	for _, c := range s.candidates {
		if c.Hits == 0 {
			continue
		}
		s.ensureSize(c)
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool {
		ri, rj := all[i].Ratio(), all[j].Ratio()
		if ri != rj {
			return ri > rj
		}
		// Tie-break deterministically: smaller first, then key order.
		if all[i].Size != all[j].Size {
			return all[i].Size < all[j].Size
		}
		return all[i].Query.Key() < all[j].Query.Key()
	})

	chosen := make(map[string]*Candidate)
	used := 0
	for _, c := range all {
		if c.Size <= 0 {
			continue
		}
		if used+c.Size > s.Budget {
			continue
		}
		chosen[c.Query.Key()] = c
		used += c.Size
	}

	delta := &Delta{}
	for key, c := range s.stored {
		if _, keep := chosen[key]; !keep {
			delta.Remove = append(delta.Remove, c.Query)
		}
	}
	for key, c := range chosen {
		if _, have := s.stored[key]; !have {
			delta.Add = append(delta.Add, c.Query)
		}
	}

	// Install the new stored set; hit counters reset for the next interval.
	newStored := make(map[string]*Candidate, len(chosen))
	for key, c := range chosen {
		newStored[key] = &Candidate{Query: c.Query, Size: c.Size, Stored: true}
	}
	s.stored = newStored
	s.candidates = make(map[string]*Candidate)

	sortQueries(delta.Add)
	sortQueries(delta.Remove)
	return delta
}

func (s *Selector) ensureSize(c *Candidate) {
	if c.Size > 0 {
		return
	}
	key := c.Query.Key()
	if sz, ok := s.sizeCache[key]; ok {
		c.Size = sz
		return
	}
	sz := 0
	if s.SizeOf != nil {
		sz = s.SizeOf(c.Query)
	}
	s.sizeCache[key] = sz
	c.Size = sz
}

// TopCandidates returns the n candidates with the most hits since the last
// revolution (ties broken by benefit/size ratio, then key), without
// mutating the selector — the Figure 8/9 sweeps store exactly n filters.
func (s *Selector) TopCandidates(n int) []query.Query {
	return s.TopCandidatesLimit(n, 0)
}

// TopCandidatesLimit is TopCandidates with a per-filter size cap: candidates
// matching more than maxSize entries are excluded (0 means no cap). User
// queries generalize at several granularities; a replica of bounded size
// only ever stores the finer ones.
func (s *Selector) TopCandidatesLimit(n, maxSize int) []query.Query {
	all := make([]*Candidate, 0, len(s.candidates))
	for _, c := range s.candidates {
		if c.Hits == 0 {
			continue
		}
		s.ensureSize(c)
		if maxSize > 0 && c.Size > maxSize {
			continue
		}
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Hits != all[j].Hits {
			return all[i].Hits > all[j].Hits
		}
		ri, rj := all[i].Ratio(), all[j].Ratio()
		if ri != rj {
			return ri > rj
		}
		return all[i].Query.Key() < all[j].Query.Key()
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]query.Query, 0, n)
	for _, c := range all[:n] {
		out = append(out, c.Query)
	}
	return out
}

// StoredSet returns the currently selected queries.
func (s *Selector) StoredSet() []query.Query {
	out := make([]query.Query, 0, len(s.stored))
	for _, c := range s.stored {
		out = append(out, c.Query)
	}
	sortQueries(out)
	return out
}

// CandidateCount returns the number of tracked (non-stored) candidates.
func (s *Selector) CandidateCount() int { return len(s.candidates) }

func sortQueries(qs []query.Query) {
	sort.Slice(qs, func(i, j int) bool { return qs[i].Key() < qs[j].Key() })
}
