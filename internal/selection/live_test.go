package selection

import (
	"testing"

	"filterdir/internal/containment"
	"filterdir/internal/filter"
	"filterdir/internal/query"
)

func mustQ(t *testing.T, f string) query.Query {
	t.Helper()
	return query.MustNew("o=xyz", query.ScopeSubtree, f).Normalize()
}

// TestWidenRuleUnderNegation pins the rule's polarity handling: dropping a
// predicate is only a generalization in positive positions. Under an odd
// number of NOTs (or on a negated predicate) the rule must not fire — the
// rewritten filter would be narrower than the input, not wider.
func TestWidenRuleUnderNegation(t *testing.T) {
	rule := WidenRule{DropAttr: "dept", ReplaceWith: filter.NewEQ("objectclass", "department")}

	// Positive conjunction: widens as documented.
	got := rule.Generalize(mustQ(t, "(&(dept=2406)(div=sw))"))
	if len(got) != 1 || got[0].FilterString() != "(&(div=sw)(objectclass=department))" {
		t.Fatalf("positive widen = %v", got)
	}

	// A dept predicate under NOT must not produce a candidate: replacing it
	// would shrink the complement.
	for _, f := range []string{
		"(!(dept=2406))",
		"(&(div=sw)(!(dept=2406)))",
		"(!(&(dept=2406)(div=sw)))",
	} {
		if got := rule.Generalize(mustQ(t, f)); got != nil {
			t.Errorf("Generalize(%s) = %v, want nil (negated context)", f, got)
		}
	}

	// Double negation is positive again.
	got = rule.Generalize(mustQ(t, "(!(!(dept=2406)))"))
	if len(got) != 1 {
		t.Fatalf("double-negated widen = %v, want one candidate", got)
	}

	// Mixed: only the positive occurrence widens; the negated one stays, and
	// the emitted candidate still contains the input.
	in := mustQ(t, "(&(dept=2406)(!(dept=9999)))")
	got = rule.Generalize(in)
	if len(got) != 1 {
		t.Fatalf("mixed-polarity widen = %v, want one candidate", got)
	}
	if s := got[0].FilterString(); s != "(&(!(dept=9999))(objectclass=department))" {
		t.Errorf("mixed-polarity candidate = %s", s)
	}
}

// TestPrefixRuleUnderNegation: prefix-widening an equality under NOT would
// narrow the filter, so negated occurrences are left alone. Soundness of the
// emitted candidates is re-checked with the containment prover.
func TestPrefixRuleUnderNegation(t *testing.T) {
	rule := PrefixRule{Attr: "serialnumber", PrefixLen: 2}

	for _, f := range []string{"(!(serialnumber=0456))", "(!(&(serialnumber=0456)(sn=x)))"} {
		if got := rule.Generalize(mustQ(t, f)); got != nil {
			t.Errorf("Generalize(%s) = %v, want nil (negated context)", f, got)
		}
	}

	in := mustQ(t, "(|(serialnumber=0456)(!(serialnumber=0999)))")
	got := rule.Generalize(in)
	if len(got) != 1 {
		t.Fatalf("mixed-polarity prefix = %v, want one candidate", got)
	}
	if s := got[0].FilterString(); s != "(|(!(serialnumber=0999))(serialnumber=04*))" {
		t.Errorf("mixed-polarity candidate = %s", s)
	}
	if !containment.NewChecker().QueryContains(in, got[0]) {
		t.Errorf("emitted candidate %s does not contain input %s", got[0], in)
	}
}

// TestZeroBudgetSelectors: a selector with no budget never stores anything,
// however hot the observed queries are — on both the offline Observe path
// and the live rejection/Evolve path.
func TestZeroBudgetSelectors(t *testing.T) {
	gen := NewGeneralizer(PrefixRule{Attr: "serialnumber", PrefixLen: 2})
	sizeOf := func(query.Query) int { return 1 }
	hot := mustQ(t, "(serialnumber=0456)")

	es := NewEvolutionSelector(gen, sizeOf, 0)
	for i := 0; i < 20; i++ {
		if d := es.Observe(hot); d != nil {
			t.Fatalf("zero-budget EvolutionSelector.Observe produced %+v", d)
		}
	}
	es.ObserveRejection(hot)
	if d := es.Evolve(); d != nil {
		t.Fatalf("zero-budget Evolve produced %+v", d)
	}
	if got := es.StoredSet(); len(got) != 0 {
		t.Fatalf("zero-budget stored set = %v", got)
	}

	ps := NewSelector(gen, sizeOf, 0, 1)
	for i := 0; i < 20; i++ {
		if d := ps.Observe(hot); d != nil && len(d.Add) > 0 {
			t.Fatalf("zero-budget Selector stored %v", d.Add)
		}
	}
}

// TestObserveCreditsCoveringStored: an observation already covered by a
// stored filter credits that filter instead of growing a duplicate
// candidate — on the offline Observe path and the live rejection path.
func TestObserveCreditsCoveringStored(t *testing.T) {
	gen := NewGeneralizer(
		PrefixRule{Attr: "serialnumber", PrefixLen: 2},
		PrefixRule{Attr: "serialnumber", PrefixLen: 3},
	)
	stored := mustQ(t, "(serialnumber=04*)")

	newSel := func() *EvolutionSelector {
		s := NewEvolutionSelector(gen, func(query.Query) int { return 1 }, 4)
		s.Contains = containment.NewChecker().QueryContains
		s.SeedStored([]query.Query{stored})
		return s
	}

	s := newSel()
	if d := s.Observe(mustQ(t, "(serialnumber=0456)")); d != nil {
		t.Fatalf("covered observation changed the stored set: %+v", d)
	}
	// Both generalizations — (serialnumber=04*) exactly and the contained
	// (serialnumber=045*) — credit the stored filter.
	if got := s.Benefit(stored); got != 2 {
		t.Errorf("stored benefit after covered Observe = %v, want 2", got)
	}
	if len(s.candidates) != 0 {
		t.Errorf("covered Observe grew candidates: %d", len(s.candidates))
	}

	s = newSel()
	s.ObserveRejection(mustQ(t, "(serialnumber=0456)"))
	// The rejected spec itself plus both generalizations, all covered.
	if got := s.Benefit(stored); got != 3 {
		t.Errorf("stored benefit after covered rejection = %v, want 3", got)
	}
	if len(s.candidates) != 0 {
		t.Errorf("covered rejection grew candidates: %d", len(s.candidates))
	}
	if d := s.Evolve(); d != nil {
		t.Fatalf("covered rejection evolved the stored set: %+v", d)
	}
}

// TestAdoptSpareTieBreaksTowardCover: with equal benefit density, the live
// adopt path prefers the candidate that provably covers the most other
// candidates — the tier widens to the generalization, not the single spec.
func TestAdoptSpareTieBreaksTowardCover(t *testing.T) {
	gen := NewGeneralizer(
		PrefixRule{Attr: "serialnumber", PrefixLen: 2},
		PrefixRule{Attr: "serialnumber", PrefixLen: 3},
	)
	s := NewEvolutionSelector(gen, func(query.Query) int { return 1 }, 4)
	s.Contains = containment.NewChecker().QueryContains

	s.ObserveRejection(mustQ(t, "(serialnumber=0456)"))
	d := s.Evolve()
	if d == nil || len(d.Add) != 1 {
		t.Fatalf("Evolve after rejection = %+v, want one adoption", d)
	}
	if got := d.Add[0].FilterString(); got != "(serialnumber=04*)" {
		t.Errorf("adopted %s, want the widest generalization (serialnumber=04*)", got)
	}
}
