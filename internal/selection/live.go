package selection

import "filterdir/internal/query"

// Live control-plane extensions to the EvolutionSelector. The offline
// simulations feed it user queries through Observe; a cascade tier's
// control plane (internal/tierctl) instead feeds it admission rejections —
// the diverted leaf specs themselves — plus per-filter serving credit from
// the tier's downstream engine, and applies the resulting deltas to the
// tier's live filter set. The selector itself is not goroutine-safe; the
// control loop serializes access.

// SeedStored installs the queries as the current actual list without
// producing a delta — the tier's configured base specs are already
// replicated when the control plane starts.
func (s *EvolutionSelector) SeedStored(qs []query.Query) {
	for _, q := range qs {
		nq := q.Normalize()
		key := nq.Key()
		if _, ok := s.actual[key]; ok {
			continue
		}
		c := &Candidate{Query: nq, Stored: true}
		s.ensureSize(c)
		s.actual[key] = c
		delete(s.candidates, key)
	}
}

// Pin marks queries as non-evictable: neither evolution nor revolution will
// ever emit them in a Delta.Remove. A tier pins its operator-configured
// base specs so adaptation only ever adds to the configuration.
func (s *EvolutionSelector) Pin(qs []query.Query) {
	if s.pinned == nil {
		s.pinned = make(map[string]bool, len(qs))
	}
	for _, q := range qs {
		s.pinned[q.Normalize().Key()] = true
	}
}

// ObserveRejection records one admission rejection: the rejected spec
// itself becomes (or credits) a candidate, alongside its generalizations —
// a leaf the tier turned away is direct evidence of demand the stored set
// does not cover. Unlike Observe it never triggers evolution inline; the
// control loop decides when to Evolve, so a burst of rejections is
// aggregated before the tier acts.
func (s *EvolutionSelector) ObserveRejection(q query.Query) {
	for k := range s.benefit {
		s.benefit[k] *= s.Decay
	}
	nq := q.Normalize()
	s.credit(nq)
	for _, cand := range s.gen.Generalize(nq) {
		s.credit(cand)
	}
}

// CreditStored adds live serving benefit to the stored filter covering q
// (exact key first, then Contains), reporting whether one was found. The
// control plane calls it with each downstream session's spec and content-
// group load so filters that are actively serving leaves keep their place
// against freshly-rejected candidates.
func (s *EvolutionSelector) CreditStored(q query.Query, n float64) bool {
	if n <= 0 {
		return false
	}
	nq := q.Normalize()
	key := nq.Key()
	if _, ok := s.actual[key]; ok {
		s.benefit[key] += n
		return true
	}
	if s.Contains != nil {
		for k, c := range s.actual {
			if s.Contains(nq, c.Query) {
				s.benefit[k] += n
				return true
			}
		}
	}
	return false
}

// Evolve runs the evolution/revolution checks once and returns the delta to
// apply to the live filter set (nil when the stored set should not change).
// The control loop calls it on its own cadence instead of per observation.
// Unlike the offline Observe path, Evolve also adopts a sufficiently-hot
// candidate into spare budget without evicting anything — a tier with
// headroom should widen on demand instead of waiting for a revolution.
func (s *EvolutionSelector) Evolve() *Delta {
	if d := s.maybeRevolution(); d != nil {
		return d
	}
	if d := s.maybeAdoptSpare(); d != nil {
		return d
	}
	return s.maybeEvolution()
}

// maybeAdoptSpare adopts the densest candidate whose benefit has reached
// AdoptThreshold and whose size fits the unused budget. Density ties break
// toward the candidate that covers the most other candidates (via
// Contains): when a rejected leaf spec and its generalization are equally
// hot, the tier widens to the generalization.
func (s *EvolutionSelector) maybeAdoptSpare() *Delta {
	spare := s.Budget - s.usedBudget()
	if spare <= 0 {
		return nil
	}
	thresh := s.AdoptThreshold
	if thresh <= 0 {
		thresh = 1
	}
	var bestKey string
	best := -1.0
	bestCover := -1
	for k, c := range s.candidates {
		s.ensureSize(c)
		if c.Size <= 0 || c.Size > spare || s.benefit[k] < thresh {
			continue
		}
		d := s.density(k, c.Size)
		cover := s.coverage(c)
		switch {
		case bestKey == "", d > best,
			d == best && cover > bestCover,
			d == best && cover == bestCover && k < bestKey:
			best, bestKey, bestCover = d, k, cover
		}
	}
	if bestKey == "" {
		return nil
	}
	s.Evolutions++
	c := s.candidates[bestKey]
	c.Stored = true
	s.actual[bestKey] = c
	delete(s.candidates, bestKey)
	return &Delta{Add: []query.Query{c.Query}}
}

// coverage counts the other candidates that c provably contains.
func (s *EvolutionSelector) coverage(c *Candidate) int {
	if s.Contains == nil {
		return 0
	}
	n := 0
	for _, o := range s.candidates {
		if o != c && s.Contains(o.Query, c.Query) {
			n++
		}
	}
	return n
}

// Benefit reports the current (decayed) benefit of the filter with the
// given key — a status/metrics probe.
func (s *EvolutionSelector) Benefit(q query.Query) float64 {
	return s.benefit[q.Normalize().Key()]
}
