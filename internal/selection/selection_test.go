package selection

import (
	"fmt"
	"strings"
	"testing"

	"filterdir/internal/containment"
	"filterdir/internal/filter"
	"filterdir/internal/query"
)

func TestPrefixRule(t *testing.T) {
	r := PrefixRule{Attr: "serialnumber", PrefixLen: 2}
	q := query.MustNew("", query.ScopeSubtree, "(serialnumber=0456)")
	got := r.Generalize(q)
	if len(got) != 1 {
		t.Fatalf("candidates = %d, want 1", len(got))
	}
	want := "(serialnumber=04*)"
	if got[0].FilterString() != want {
		t.Errorf("generalized = %s, want %s", got[0].FilterString(), want)
	}
	// Generalization must contain the original.
	ok, err := containment.FilterContainsGeneric(q.Filter, got[0].Filter)
	if err != nil || !ok {
		t.Errorf("generalization does not contain original: %v %v", ok, err)
	}
	// Short values do not generalize.
	if out := r.Generalize(query.MustNew("", query.ScopeSubtree, "(serialnumber=04)")); len(out) != 0 {
		t.Errorf("short value generalized: %v", out)
	}
	// Prefix filters re-generalize to shorter prefixes.
	if out := r.Generalize(query.MustNew("", query.ScopeSubtree, "(serialnumber=0456*)")); len(out) != 1 || out[0].FilterString() != want {
		t.Errorf("substring generalization = %v", out)
	}
}

func TestWidenRule(t *testing.T) {
	r := WidenRule{DropAttr: "dept", ReplaceWith: filter.NewEQ("objectclass", "department")}
	q := query.MustNew("", query.ScopeSubtree, "(&(dept=2406)(div=sw))")
	got := r.Generalize(q)
	if len(got) != 1 {
		t.Fatalf("candidates = %d, want 1", len(got))
	}
	if !strings.Contains(got[0].FilterString(), "(div=sw)") ||
		!strings.Contains(got[0].FilterString(), "(objectclass=department)") {
		t.Errorf("widened = %s", got[0].FilterString())
	}
	// The widened filter contains the original restricted to the class; the
	// raw original lacks the objectclass conjunct, so check region logic via
	// a class-qualified query.
	q2 := query.MustNew("", query.ScopeSubtree, "(&(objectclass=department)(dept=2406)(div=sw))")
	ok, err := containment.FilterContainsGeneric(q2.Filter, got[0].Filter)
	if err != nil || !ok {
		t.Errorf("widened filter does not contain class-qualified original")
	}
	// Dropping the only predicate yields nothing (refuse match-all).
	r2 := WidenRule{DropAttr: "dept"}
	if out := r2.Generalize(query.MustNew("", query.ScopeSubtree, "(dept=2406)")); len(out) != 0 {
		t.Errorf("match-all generalization not refused: %v", out)
	}
}

func TestGeneralizerDedup(t *testing.T) {
	g := NewGeneralizer(
		PrefixRule{Attr: "serialnumber", PrefixLen: 2},
		PrefixRule{Attr: "serialnumber", PrefixLen: 2}, // duplicate rule
		PrefixRule{Attr: "serialnumber", PrefixLen: 3},
	)
	q := query.MustNew("", query.ScopeSubtree, "(serialnumber=0456)")
	got := g.Generalize(q)
	if len(got) != 2 {
		t.Fatalf("candidates = %d, want 2 (deduplicated)", len(got))
	}
}

// sizeByPrefix sizes a candidate by prefix length: shorter prefix, more
// entries.
func sizeByPrefix(q query.Query) int {
	f := q.FilterString()
	switch {
	case strings.Contains(f, "=04*"), strings.Contains(f, "=05*"):
		return 100
	case strings.Contains(f, "=040*"), strings.Contains(f, "=051*"):
		return 10
	default:
		return 50
	}
}

func TestSelectorRevolutionPicksByRatio(t *testing.T) {
	g := NewGeneralizer(
		PrefixRule{Attr: "serialnumber", PrefixLen: 2},
		PrefixRule{Attr: "serialnumber", PrefixLen: 3},
	)
	s := NewSelector(g, sizeByPrefix, 50, 10)

	// Nine queries hitting 040x: candidates (04*) size 100 and (040*) size
	// 10 both get 9 hits; only (040*) fits the budget of 50 and has the
	// better ratio.
	var delta *Delta
	for i := 0; i < 10; i++ {
		delta = s.Observe(query.MustNew("", query.ScopeSubtree, fmt.Sprintf("(serialnumber=040%d)", i%10)))
	}
	if delta == nil {
		t.Fatal("revolution did not trigger at interval")
	}
	if len(delta.Add) != 1 || delta.Add[0].FilterString() != "(serialnumber=040*)" {
		t.Fatalf("delta.Add = %v", delta.Add)
	}
	if len(delta.Remove) != 0 {
		t.Errorf("delta.Remove = %v", delta.Remove)
	}
	if got := s.StoredSet(); len(got) != 1 {
		t.Errorf("StoredSet = %v", got)
	}
}

func TestSelectorEvictsColdFilters(t *testing.T) {
	g := NewGeneralizer(PrefixRule{Attr: "serialnumber", PrefixLen: 3})
	s := NewSelector(g, func(query.Query) int { return 10 }, 10, 5)

	// Warm 040*.
	var d *Delta
	for i := 0; i < 5; i++ {
		d = s.Observe(query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)"))
	}
	if d == nil || len(d.Add) != 1 {
		t.Fatalf("initial revolution: %+v", d)
	}
	// Access pattern shifts to 051*; with budget for one filter, the next
	// revolution must swap.
	for i := 0; i < 5; i++ {
		d = s.Observe(query.MustNew("", query.ScopeSubtree, "(serialnumber=0511)"))
	}
	if d == nil {
		t.Fatal("second revolution missing")
	}
	if len(d.Add) != 1 || !strings.Contains(d.Add[0].FilterString(), "051") {
		t.Errorf("shift not adopted: %+v", d)
	}
	if len(d.Remove) != 1 || !strings.Contains(d.Remove[0].FilterString(), "040") {
		t.Errorf("cold filter not evicted: %+v", d)
	}
}

func TestSelectorBudgetRespected(t *testing.T) {
	g := NewGeneralizer(PrefixRule{Attr: "serialnumber", PrefixLen: 3})
	s := NewSelector(g, func(query.Query) int { return 30 }, 70, 20)
	for i := 0; i < 20; i++ {
		// Rotate over 5 prefixes; each candidate sized 30, budget 70 → at
		// most 2 stored.
		s.Observe(query.MustNew("", query.ScopeSubtree, fmt.Sprintf("(serialnumber=0%d5)", 40+i%5)))
	}
	if n := len(s.StoredSet()); n > 2 {
		t.Errorf("stored %d filters, budget allows 2", n)
	}
}

func TestForceRevolution(t *testing.T) {
	g := NewGeneralizer(PrefixRule{Attr: "serialnumber", PrefixLen: 3})
	s := NewSelector(g, func(query.Query) int { return 5 }, 100, 1000)
	s.Observe(query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)"))
	d := s.ForceRevolution()
	if d == nil || len(d.Add) != 1 {
		t.Fatalf("ForceRevolution = %+v", d)
	}
}

func TestEvolutionSelectorAdoptsAndChurns(t *testing.T) {
	g := NewGeneralizer(PrefixRule{Attr: "serialnumber", PrefixLen: 3})
	s := NewEvolutionSelector(g, func(query.Query) int { return 10 }, 10)

	var deltas int
	for i := 0; i < 50; i++ {
		// Alternate hot prefixes to provoke evolutions.
		prefix := "0401"
		if (i/10)%2 == 1 {
			prefix = "0511"
		}
		if d := s.Observe(query.MustNew("", query.ScopeSubtree, fmt.Sprintf("(serialnumber=%s)", prefix))); d != nil {
			deltas++
		}
	}
	if len(s.StoredSet()) == 0 {
		t.Fatal("evolution selector never adopted a filter")
	}
	if s.Evolutions == 0 {
		t.Error("no evolutions recorded under an alternating workload")
	}
	if deltas < 2 {
		t.Errorf("stored set churned %d times; expected more under alternation", deltas)
	}
}

func TestDefaultEnterpriseRules(t *testing.T) {
	g := NewGeneralizer(DefaultEnterpriseRules()...)
	got := g.Generalize(query.MustNew("", query.ScopeSubtree, "(serialnumber=045678)"))
	if len(got) != 2 {
		t.Errorf("serial generalizations = %v", got)
	}
	got = g.Generalize(query.MustNew("", query.ScopeSubtree, "(&(dept=2406)(div=sw))"))
	if len(got) != 1 {
		t.Errorf("dept generalizations = %v", got)
	}
}

func TestEvolutionSelectorRevolution(t *testing.T) {
	g := NewGeneralizer(PrefixRule{Attr: "serialnumber", PrefixLen: 3})
	s := NewEvolutionSelector(g, func(query.Query) int { return 10 }, 30)
	// A strong trigger: three hot prefixes accumulate candidate benefit far
	// above the single adopted filter.
	prefixes := []string{"0401", "0511", "0621", "0731"}
	revolutionsSeen := 0
	for i := 0; i < 300; i++ {
		p := prefixes[i%len(prefixes)]
		if d := s.Observe(query.MustNew("", query.ScopeSubtree, fmt.Sprintf("(serialnumber=%s)", p))); d != nil {
			revolutionsSeen++
		}
	}
	if s.Revolutions == 0 {
		t.Errorf("no revolutions under multi-hot workload (evolutions=%d)", s.Evolutions)
	}
	if n := len(s.StoredSet()); n == 0 || n > 3 {
		t.Errorf("stored set size = %d, want 1..3 under budget 30", n)
	}
}

func TestSelectorSkipsOversizedCandidates(t *testing.T) {
	g := NewGeneralizer(PrefixRule{Attr: "serialnumber", PrefixLen: 3})
	s := NewSelector(g, func(query.Query) int { return 1000 }, 10, 0)
	for i := 0; i < 5; i++ {
		s.Observe(query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)"))
	}
	if d := s.ForceRevolution(); d != nil && len(d.Add) != 0 {
		t.Errorf("oversized candidate selected: %+v", d.Add)
	}
}

func TestSelectorZeroSizeCandidates(t *testing.T) {
	// Candidates matching nothing (size 0) are never stored.
	g := NewGeneralizer(PrefixRule{Attr: "serialnumber", PrefixLen: 3})
	s := NewSelector(g, func(query.Query) int { return 0 }, 10, 0)
	for i := 0; i < 5; i++ {
		s.Observe(query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)"))
	}
	if d := s.ForceRevolution(); d != nil && len(d.Add) != 0 {
		t.Errorf("empty candidate selected: %+v", d.Add)
	}
}

func TestTopCandidatesLimit(t *testing.T) {
	g := NewGeneralizer(
		PrefixRule{Attr: "serialnumber", PrefixLen: 3},
		PrefixRule{Attr: "serialnumber", PrefixLen: 2},
	)
	sizes := map[int]int{3: 10, 2: 1000} // by prefix length
	sizeOf := func(q query.Query) int {
		vals := q.Filter.SlotValues()
		return sizes[len(vals[0])]
	}
	s := NewSelector(g, sizeOf, 1<<30, 0)
	for i := 0; i < 10; i++ {
		s.Observe(query.MustNew("", query.ScopeSubtree, "(serialnumber=0401)"))
	}
	all := s.TopCandidates(10)
	if len(all) != 2 {
		t.Fatalf("TopCandidates = %d, want 2", len(all))
	}
	capped := s.TopCandidatesLimit(10, 100)
	if len(capped) != 1 {
		t.Fatalf("TopCandidatesLimit = %d, want 1 (the big prefix excluded)", len(capped))
	}
	if got := capped[0].FilterString(); got != "(serialnumber=040*)" {
		t.Errorf("capped candidate = %s", got)
	}
}
