// Package selection implements replica content determination (Section 6):
// generalizing user queries into candidate filters that capture semantic and
// spatial locality, tracking per-candidate hit statistics, and periodically
// re-selecting the stored filter set by benefit/size ratio — the paper's
// lightweight approximation of the evolution/revolution algorithm of
// Kapitskaia, Ng and Srivastava (EDBT 2000), which is also provided as a
// baseline.
package selection

import (
	"strings"

	"filterdir/internal/entry"
	"filterdir/internal/filter"
	"filterdir/internal/query"
)

// Rule produces zero or more generalized queries from a user query.
// Generalized queries must semantically contain the input (guideline (i)
// and (ii) of Section 6.1: attribute-component and hierarchy
// generalization).
type Rule interface {
	Generalize(q query.Query) []query.Query
}

// PrefixRule generalizes equality predicates on a structured attribute into
// prefix filters: (serialNumber=0456) with PrefixLen 2 becomes
// (serialNumber=04*). Attribute components with locality (geography or
// department prefixes in serial numbers) make these filters describe
// frequently accessed regions.
type PrefixRule struct {
	Attr      string
	PrefixLen int
}

// Generalize implements Rule.
func (r PrefixRule) Generalize(q query.Query) []query.Query {
	if q.Filter == nil {
		return nil
	}
	attr := strings.ToLower(r.Attr)
	changed := false
	gen := rewrite(q.Filter, func(n *filter.Node) *filter.Node {
		if n.Op == filter.EQ && n.Attr == attr && len(n.Value) > r.PrefixLen && r.PrefixLen > 0 {
			changed = true
			return filter.NewSubstr(attr, filter.Substring{Initial: n.Value[:r.PrefixLen]})
		}
		if n.Op == filter.Substr && n.Attr == attr && n.Sub != nil &&
			len(n.Sub.Initial) > r.PrefixLen && r.PrefixLen > 0 {
			changed = true
			return filter.NewSubstr(attr, filter.Substring{Initial: n.Sub.Initial[:r.PrefixLen]})
		}
		return n
	})
	if !changed {
		return nil
	}
	out := q
	out.Filter = gen.Normalize()
	return []query.Query{out}
}

// WidenRule generalizes by the natural hierarchy of filters: predicates on
// the listed attributes are dropped from conjunctions, so
// (&(dept=2406)(div=sw)) widens to (&(objectclass=department)(div=sw)) — all
// departments of the division. ReplaceWith, when non-empty, substitutes a
// class predicate for the dropped one to keep the filter anchored.
type WidenRule struct {
	DropAttr    string
	ReplaceWith *filter.Node // optional predicate replacing the dropped one
}

// Generalize implements Rule.
func (r WidenRule) Generalize(q query.Query) []query.Query {
	if q.Filter == nil {
		return nil
	}
	attr := strings.ToLower(r.DropAttr)
	changed := false
	gen := rewrite(q.Filter, func(n *filter.Node) *filter.Node {
		if n.IsPredicate() && n.Attr == attr {
			changed = true
			if r.ReplaceWith != nil {
				return r.ReplaceWith.Clone()
			}
			return &filter.Node{Op: filter.True}
		}
		return n
	})
	if !changed {
		return nil
	}
	norm := gen.Normalize()
	if norm.Op == filter.True {
		return nil // refusing to generalize to match-all
	}
	out := q
	out.Filter = norm
	return []query.Query{out}
}

// rewrite returns a copy of the filter with fn applied bottom-up to every
// predicate node in POSITIVE polarity. Predicates under an odd number of
// NOTs (or carrying a negation themselves) are copied untouched: widening a
// subformula under negation narrows the whole filter, so a rule firing
// there would emit a "generalization" that does not contain the input.
func rewrite(n *filter.Node, fn func(*filter.Node) *filter.Node) *filter.Node {
	return rewritePolarity(n, true, fn)
}

func rewritePolarity(n *filter.Node, positive bool, fn func(*filter.Node) *filter.Node) *filter.Node {
	if n == nil {
		return nil
	}
	if n.IsPredicate() {
		c := n.Clone()
		if !positive || n.Neg {
			return c
		}
		return fn(c)
	}
	c := &filter.Node{Op: n.Op, Attr: n.Attr, Value: n.Value, Neg: n.Neg}
	childPolarity := positive
	if n.Op == filter.Not {
		childPolarity = !positive
	}
	for _, ch := range n.Children {
		c.Children = append(c.Children, rewritePolarity(ch, childPolarity, fn))
	}
	return c
}

// Generalizer applies a rule set to user queries.
type Generalizer struct {
	rules []Rule
}

// NewGeneralizer builds a generalizer from rules.
func NewGeneralizer(rules ...Rule) *Generalizer {
	return &Generalizer{rules: rules}
}

// Generalize returns the deduplicated candidate queries produced by all
// rules for a user query.
func (g *Generalizer) Generalize(q query.Query) []query.Query {
	var out []query.Query
	seen := make(map[string]bool)
	for _, r := range g.rules {
		for _, cand := range r.Generalize(q) {
			n := cand.Normalize()
			k := n.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// DefaultEnterpriseRules returns the generalization rules used by the
// paper's case study: serial-number prefix classes at two granularities and
// department-hierarchy widening.
func DefaultEnterpriseRules() []Rule {
	deptClass := filter.NewEQ(entry.AttrObjectClass, "department")
	return []Rule{
		PrefixRule{Attr: "serialnumber", PrefixLen: 2},
		PrefixRule{Attr: "serialnumber", PrefixLen: 3},
		WidenRule{DropAttr: "dept", ReplaceWith: deptClass},
	}
}
