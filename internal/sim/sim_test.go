package sim

import (
	"math"
	"testing"

	"filterdir/internal/metrics"
)

// testConfig keeps the shape tests quick; the full-scale runs live in
// cmd/dirsim and the root benchmarks.
func testConfig() Config {
	return Config{
		Employees:       2500,
		MeasureQueries:  2500,
		WarmupQueries:   2500,
		BudgetFractions: []float64{0.02, 0.05, 0.10, 0.20, 0.35},
		Updates:         1500,
		Seed:            1,
		PayloadBytes:    128,
	}
}

func series(t *testing.T, fig *metrics.Figure, name string) *metrics.Series {
	t.Helper()
	s := fig.SeriesByName(name)
	if s == nil {
		t.Fatalf("%s: series %q missing", fig.ID, name)
	}
	if len(s.Points) == 0 {
		t.Fatalf("%s: series %q empty", fig.ID, name)
	}
	return s
}

func TestTable1Shape(t *testing.T) {
	fig, err := Table1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	measured := series(t, fig, "measured %")
	paper := series(t, fig, "paper %")
	for _, p := range paper.Points {
		got, ok := measured.YAt(p.X)
		if !ok {
			t.Fatalf("measured missing x=%v", p.X)
		}
		if math.Abs(got-p.Y) > 3 {
			t.Errorf("mix for kind %v: measured %.1f%%, paper %.1f%%", p.X, got, p.Y)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	fig, err := Figure4(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	filter := series(t, fig, "filter-based")
	subtree := series(t, fig, "subtree-based")

	// Filter beats subtree at every replica size.
	for _, p := range filter.Points {
		sv, ok := subtree.YAt(p.X)
		if !ok {
			t.Fatalf("subtree missing x=%v", p.X)
		}
		if p.Y <= sv {
			t.Errorf("at size %.2f: filter %.3f <= subtree %.3f", p.X, p.Y, sv)
		}
	}
	// The paper's headline: hit ratio at least 0.5 replicating under 10 %.
	if y, ok := filter.YAt(0.10); !ok || y < 0.5 {
		t.Errorf("filter hit ratio at 10%% = %.3f, want >= 0.5", y)
	}
	// Filter curve is monotone non-decreasing within noise.
	for i := 1; i < len(filter.Points); i++ {
		if filter.Points[i].Y < filter.Points[i-1].Y-0.08 {
			t.Errorf("filter curve drops sharply at %.2f: %.3f -> %.3f",
				filter.Points[i].X, filter.Points[i-1].Y, filter.Points[i].Y)
		}
	}
	// Subtree replicas cannot selectively replicate a flat namespace: at
	// small sizes they answer (almost) nothing.
	if y, _ := subtree.YAt(0.02); y > 0.05 {
		t.Errorf("subtree hit ratio at 2%% = %.3f, want ~0", y)
	}
}

func TestFigure5Shape(t *testing.T) {
	fig, err := Figure5(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	small := series(t, fig, "filter R=6000")
	large := series(t, fig, "filter R=10000")
	// The smaller revolution interval adapts faster: its hit ratio is at
	// least as high at every budget (within noise).
	better := 0
	for _, p := range small.Points {
		lv, ok := large.YAt(p.X)
		if !ok {
			t.Fatalf("R=10000 missing x=%v", p.X)
		}
		if p.Y+0.03 < lv {
			t.Errorf("at size %.2f: R=6000 %.3f well below R=10000 %.3f", p.X, p.Y, lv)
		}
		if p.Y > lv {
			better++
		}
	}
	if better < 2 {
		t.Errorf("R=6000 better at only %d points; adaptation advantage not visible", better)
	}
}

func TestFigure6Shape(t *testing.T) {
	fig, err := Figure6(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	filter := series(t, fig, "filter-based")
	subtree := series(t, fig, "subtree-based")

	// Filter reaches a hit ratio beyond anything subtree manages, and at
	// the subtree's best hit ratio, the filter traffic for a comparable or
	// better hit ratio is smaller.
	bestSub := 0.0
	bestSubTraffic := 0.0
	for _, p := range subtree.Points {
		if p.X > bestSub {
			bestSub, bestSubTraffic = p.X, p.Y
		}
	}
	if bestSub == 0 {
		t.Skip("subtree never hit at this scale")
	}
	for _, p := range filter.Points {
		if p.X >= bestSub {
			if p.Y >= bestSubTraffic {
				t.Errorf("filter traffic %.0f at hit %.2f not below subtree %.0f at hit %.2f",
					p.Y, p.X, bestSubTraffic, bestSub)
			}
			return
		}
	}
	t.Errorf("filter never reached subtree's best hit ratio %.2f", bestSub)
}

func TestFigure7Shape(t *testing.T) {
	fig, err := Figure7(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	small := series(t, fig, "filter R=6000")
	large := series(t, fig, "filter R=10000")
	subtree := series(t, fig, "subtree-based")

	// Department entries barely change: subtree traffic stays tiny
	// compared to the filter replica's revolution-driven traffic.
	if subtree.MaxY() >= small.MaxY() {
		t.Errorf("subtree traffic %.0f not below filter traffic %.0f", subtree.MaxY(), small.MaxY())
	}
	// The smaller interval pays at least as much total traffic.
	sumS, sumL := 0.0, 0.0
	for _, p := range small.Points {
		sumS += p.Y
	}
	for _, p := range large.Points {
		sumL += p.Y
	}
	if sumS < sumL*0.9 {
		t.Errorf("R=6000 total traffic %.0f unexpectedly below R=10000 %.0f", sumS, sumL)
	}
}

func testFigure89Shape(t *testing.T, fig *metrics.Figure) {
	t.Helper()
	user := series(t, fig, "user queries only")
	gen := series(t, fig, "generalized only")
	both := series(t, fig, "generalized + user")

	for _, s := range []*metrics.Series{user, gen, both} {
		// Monotone non-decreasing within noise.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y-0.05 {
				t.Errorf("%s: %s drops at %v: %.3f -> %.3f", fig.ID, s.Name,
					s.Points[i].X, s.Points[i-1].Y, s.Points[i].Y)
			}
		}
	}
	// Generalized filters beat pure user-query caching, and the combination
	// is at least as good as either (within noise) at the largest sweep
	// point.
	last := user.Points[len(user.Points)-1].X
	uy, _ := user.YAt(last)
	gy, _ := gen.YAt(last)
	by, _ := both.YAt(last)
	if gy <= uy {
		t.Errorf("%s: generalized %.3f not above user-only %.3f", fig.ID, gy, uy)
	}
	if by < uy-0.03 || by < gy-0.07 {
		t.Errorf("%s: combined %.3f below components (user %.3f, gen %.3f)", fig.ID, by, uy, gy)
	}
	// The user-query curve saturates: the last doubling adds little.
	mid, _ := user.YAt(150)
	if uy-mid > 0.15 {
		t.Errorf("%s: user-query curve still climbing steeply: %.3f -> %.3f", fig.ID, mid, uy)
	}
}

func TestFigure8Shape(t *testing.T) {
	fig, err := Figure8(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	testFigure89Shape(t, fig)
}

func TestFigure9Shape(t *testing.T) {
	fig, err := Figure9(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	testFigure89Shape(t, fig)
}

func TestMailLocationShape(t *testing.T) {
	fig, err := MailLocation(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := series(t, fig, "hit ratio")
	genMail, _ := s.YAt(1)
	cacheMail, _ := s.YAt(2)
	loc, _ := s.YAt(3)
	// Unorganized mail local parts: prefix generalization buys little over
	// caching; most of its "hits" are just repeats.
	if genMail > cacheMail+0.25 {
		t.Errorf("mail generalization unexpectedly effective: gen %.3f vs cache %.3f", genMail, cacheMail)
	}
	// The fully replicated location tree answers everything.
	if loc != 1.0 {
		t.Errorf("location hit ratio = %.3f, want 1.0", loc)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("nope", testConfig()); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestRenderAndCSV(t *testing.T) {
	fig, err := Table1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb1, sb2 stringBuilder
	if err := fig.Render(&sb1); err != nil {
		t.Fatal(err)
	}
	if err := fig.CSV(&sb2); err != nil {
		t.Fatal(err)
	}
	if len(sb1.s) == 0 || len(sb2.s) == 0 {
		t.Error("empty render output")
	}
}

type stringBuilder struct{ s []byte }

func (b *stringBuilder) Write(p []byte) (int, error) {
	b.s = append(b.s, p...)
	return len(p), nil
}

func TestOverheadShape(t *testing.T) {
	fig, err := Overhead(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	checks := series(t, fig, "containment checks per query")
	// Per-query containment checks grow with the stored-filter count
	// (Section 7.4: overhead proportional to the number of stored filters).
	for i := 1; i < len(checks.Points); i++ {
		if checks.Points[i].Y < checks.Points[i-1].Y {
			t.Errorf("checks per query dropped at %v: %.1f -> %.1f",
				checks.Points[i].X, checks.Points[i-1].Y, checks.Points[i].Y)
		}
	}
	times := series(t, fig, "us per query (templates)")
	if times.MaxY() <= 0 {
		t.Error("no time measured")
	}
}

func TestContainmentStatsShape(t *testing.T) {
	fig, err := ContainmentStats(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := series(t, fig, "% of decisions")
	fallback, _ := s.YAt(5)
	if fallback > 5 {
		t.Errorf("generic fallback handles %.1f%% of decisions; templates should cover the workload", fallback)
	}
	pruned, _ := s.YAt(3)
	compiled, _ := s.YAt(2)
	if pruned+compiled < 50 {
		t.Errorf("template machinery resolves only %.1f%% of cross-template decisions", pruned+compiled)
	}
	plans := series(t, fig, "plans compiled")
	if plans.MaxY() < 1 || plans.MaxY() > 100 {
		t.Errorf("plans compiled = %.0f, want a small per-pair count", plans.MaxY())
	}
}
