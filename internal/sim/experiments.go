package sim

import (
	"fmt"

	"filterdir/internal/dn"
	"filterdir/internal/metrics"
	"filterdir/internal/query"
	"filterdir/internal/selection"
	"filterdir/internal/workload"
)

// serialRules are the generalization rules for the serial-number workload:
// block-granularity (4-char) and country-granularity (2-char) prefixes of
// the structured serialNumber attribute.
func serialRules() []selection.Rule {
	return []selection.Rule{
		selection.PrefixRule{Attr: "serialnumber", PrefixLen: workload.SerialPrefixLen},
		selection.PrefixRule{Attr: "serialnumber", PrefixLen: 2},
	}
}

// deptRules are the generalization rules for the department workload:
// dept-code prefix groups and full-division widening.
func deptRules() []selection.Rule {
	return []selection.Rule{
		selection.PrefixRule{Attr: "dept", PrefixLen: 3},
		selection.WidenRule{DropAttr: "dept"},
	}
}

// rootBase widens a query's base to the DIT root: base generalization, the
// natural first step when deriving replication candidates.
func rootBase(q query.Query) query.Query {
	out := q
	out.Base = dn.Root
	return out
}

// Table1 regenerates the workload-mix table from a generated trace.
func Table1(cfg Config) (*metrics.Figure, error) {
	e, err := buildEnv(cfg)
	if err != nil {
		return nil, err
	}
	tc := e.traceConfig()
	tc.TemporalRepeat = 0
	g := workload.NewGenerator(e.dir, tc)
	n := cfg.MeasureQueries * 4
	trace := make([]workload.TraceQuery, n)
	for i := range trace {
		trace[i] = g.Next()
	}
	counts := workload.MixCounts(trace)
	fig := &metrics.Figure{
		ID: "table1", Title: "Workload distribution by query type",
		XLabel: "query type", YLabel: "% of workload",
		Notes: []string{
			"x=1 (serialNumber=_)  x=2 (mail=_)  x=3 (&(dept=_)(div=_))  x=4 (location=_)",
			"paper: 58 / 24 / 16 / 2",
		},
	}
	measured := fig.AddSeries("measured %")
	paperS := fig.AddSeries("paper %")
	paperVals := map[workload.QueryKind]float64{
		workload.KindSerial: 58, workload.KindMail: 24,
		workload.KindDept: 16, workload.KindLocation: 2,
	}
	for _, k := range []workload.QueryKind{workload.KindSerial, workload.KindMail, workload.KindDept, workload.KindLocation} {
		measured.Add(float64(k), 100*float64(counts[k])/float64(n))
		paperS.Add(float64(k), paperVals[k])
	}
	return fig, nil
}

// runHits measures the hit ratio of a filter node over n queries of one
// kind. cache controls whether misses are cached as user queries (with the
// master result, as a client-side proxy would).
func (e *env) runHits(node *filterNode, g *workload.Generator, kind workload.QueryKind, n int, cache bool) float64 {
	hits := 0
	for i := 0; i < n; i++ {
		tq := g.NextOfKind(kind)
		_, hit, _ := node.Replica.Answer(tq.Query)
		if hit {
			hits++
			continue
		}
		if cache {
			result := e.dir.Master.MatchAll(tq.Query)
			_ = node.Replica.CacheQuery(tq.Query, result)
		}
	}
	return float64(hits) / float64(n)
}

// warmSelector feeds n warm-up queries of a kind into a fresh selector.
func (e *env) warmSelector(rules []selection.Rule, g *workload.Generator, kind workload.QueryKind, n, budget int) *selection.Selector {
	sel := selection.NewSelector(selection.NewGeneralizer(rules...), e.sizeOf, budget, 0)
	for i := 0; i < n; i++ {
		sel.Observe(rootBase(g.NextOfKind(kind).Query))
	}
	return sel
}

// setupSerialFilterNode warms the selector on the serial workload and
// installs the selected filters.
func (e *env) setupSerialFilterNode(budget int) (*filterNode, error) {
	g := workload.NewGenerator(e.dir, e.traceConfig())
	sel := e.warmSelector(serialRules(), g, workload.KindSerial, e.cfg.WarmupQueries, budget)
	node, err := newFilterNode(e.eng, nil, 0)
	if err != nil {
		return nil, err
	}
	if err := node.ApplyDelta(sel.ForceRevolution()); err != nil {
		return nil, err
	}
	return node, nil
}

// Figure4 regenerates hit-ratio vs replica size for the serial-number
// query: filter-based vs subtree-based replication.
func Figure4(cfg Config) (*metrics.Figure, error) {
	e, err := buildEnv(cfg)
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID: "figure4", Title: "Hit ratio vs replica size — (serialNumber=_) query",
		XLabel: "replica size", YLabel: "hit ratio",
		Notes: []string{"replica size as fraction of person entries",
			"paper shape: filter reaches 0.5 below 0.10; subtree needs whole country subtrees"},
	}
	filterS := fig.AddSeries("filter-based")
	subtreeS := fig.AddSeries("subtree-based")

	// Sample trace for subtree access shares.
	gShare := workload.NewGenerator(e.dir, e.traceConfig())
	sample := make([]workload.TraceQuery, 3000)
	for i := range sample {
		sample[i] = gShare.NextOfKind(workload.KindSerial)
	}
	cands := countryCands(e.dir, sample)

	for _, frac := range cfg.BudgetFractions {
		budget := int(frac * float64(e.dir.EmployeeCount))

		node, err := e.setupSerialFilterNode(budget)
		if err != nil {
			return nil, err
		}
		gm := workload.NewGenerator(e.dir, e.traceConfig())
		filterS.Add(frac, e.runHits(node, gm, workload.KindSerial, cfg.MeasureQueries, false))

		sub, err := newSubtreeNode(e.eng, pickSubtrees(cands, budget))
		if err != nil {
			return nil, err
		}
		gs := workload.NewGenerator(e.dir, e.traceConfig())
		hits := 0
		for i := 0; i < cfg.MeasureQueries; i++ {
			tq := gs.NextOfKind(workload.KindSerial)
			if _, hit := sub.replica.Answer(tq.Query); hit {
				hits++
			}
		}
		subtreeS.Add(frac, float64(hits)/float64(cfg.MeasureQueries))
	}
	return fig, nil
}

// runDynamicDept runs the department workload with periodic revolutions at
// interval r and access-pattern drift, returning the hit ratio and the
// node (for traffic accounting).
func (e *env) runDynamicDept(budget, r, n int, updatesPerPhase int) (float64, *filterNode, error) {
	g := workload.NewGenerator(e.dir, e.traceConfig())
	sel := selection.NewSelector(selection.NewGeneralizer(deptRules()...), e.sizeOf, budget, r)
	node, err := newFilterNode(e.eng, nil, 0)
	if err != nil {
		return 0, nil, err
	}
	// Seed from a short warm-up; revolutions fired mid-warm-up must be
	// applied too.
	for i := 0; i < r; i++ {
		if d := sel.Observe(rootBase(g.NextOfKind(workload.KindDept).Query)); d != nil {
			if err := node.ApplyDelta(d); err != nil {
				return 0, nil, err
			}
		}
	}
	if err := node.ApplyDelta(sel.ForceRevolution()); err != nil {
		return 0, nil, err
	}

	upd := e.updater()
	drift := n / 2
	hits := 0
	for i := 0; i < n; i++ {
		if drift > 0 && i > 0 && i%drift == 0 {
			g.Reshuffle(e.cfg.Seed + int64(i))
			if updatesPerPhase > 0 {
				if _, err := upd.Apply(updatesPerPhase); err != nil {
					return 0, nil, err
				}
				if err := node.SyncAll(); err != nil {
					return 0, nil, err
				}
			}
		}
		tq := g.NextOfKind(workload.KindDept)
		_, hit, _ := node.Replica.Answer(tq.Query)
		if hit {
			hits++
		}
		if d := sel.Observe(rootBase(tq.Query)); d != nil {
			if err := node.ApplyDelta(d); err != nil {
				return 0, nil, err
			}
		}
	}
	return float64(hits) / float64(n), node, nil
}

// deptIntervals scales the paper's revolution intervals (R=6000, R=10000
// queries) to the configured run length, preserving their 6:10 ratio.
func (cfg Config) deptIntervals() (small, large int) {
	large = cfg.MeasureQueries / 2
	if large < 10 {
		large = 10
	}
	small = large * 6 / 10
	return small, large
}

// Figure5 regenerates hit-ratio vs replica size for the department query at
// two revolution intervals.
func Figure5(cfg Config) (*metrics.Figure, error) {
	e, err := buildEnv(cfg)
	if err != nil {
		return nil, err
	}
	small, large := cfg.deptIntervals()
	fig := &metrics.Figure{
		ID: "figure5", Title: "Hit ratio vs replica size — (&(dept=_)(div=_)) query",
		XLabel: "replica size", YLabel: "hit ratio",
		Notes: []string{"replica size as fraction of department entries",
			fmt.Sprintf("revolution intervals scaled: R=6000→%d, R=10000→%d queries", small, large),
			"paper shape: smaller revolution interval adapts faster → higher hit ratio"},
	}
	sSmall := fig.AddSeries("filter R=6000")
	sLarge := fig.AddSeries("filter R=10000")
	total := len(e.dir.Departments)
	for _, frac := range cfg.BudgetFractions {
		budget := int(frac * float64(total))
		if budget < 1 {
			budget = 1
		}
		hrSmall, _, err := e.runDynamicDept(budget, small, cfg.MeasureQueries, 0)
		if err != nil {
			return nil, err
		}
		hrLarge, _, err := e.runDynamicDept(budget, large, cfg.MeasureQueries, 0)
		if err != nil {
			return nil, err
		}
		sSmall.Add(frac, hrSmall)
		sLarge.Add(frac, hrLarge)
	}
	return fig, nil
}

// Figure6 regenerates update traffic vs hit ratio for the serial-number
// query: for each replica size, the hit ratio is measured and the
// synchronization traffic of an update burst recorded.
func Figure6(cfg Config) (*metrics.Figure, error) {
	fig := &metrics.Figure{
		ID: "figure6", Title: "Update traffic vs hit ratio — (serialNumber=_) query",
		XLabel: "hit ratio", YLabel: "update traffic (entries)",
		Notes: []string{fmt.Sprintf("%d master updates per point", cfg.Updates),
			"paper shape: subtree traffic far above filter traffic at comparable hit ratios"},
	}
	filterS := fig.AddSeries("filter-based")
	subtreeS := fig.AddSeries("subtree-based")

	for _, frac := range cfg.BudgetFractions {
		// A fresh environment per point keeps the update burst and the
		// directory state identical across budgets.
		e, err := buildEnv(cfg)
		if err != nil {
			return nil, err
		}
		gShare := workload.NewGenerator(e.dir, e.traceConfig())
		sample := make([]workload.TraceQuery, 3000)
		for i := range sample {
			sample[i] = gShare.NextOfKind(workload.KindSerial)
		}
		cands := countryCands(e.dir, sample)
		budget := int(frac * float64(e.dir.EmployeeCount))

		node, err := e.setupSerialFilterNode(budget)
		if err != nil {
			return nil, err
		}
		gm := workload.NewGenerator(e.dir, e.traceConfig())
		hrFilter := e.runHits(node, gm, workload.KindSerial, cfg.MeasureQueries, false)

		sub, err := newSubtreeNode(e.eng, pickSubtrees(cands, budget))
		if err != nil {
			return nil, err
		}
		gs := workload.NewGenerator(e.dir, e.traceConfig())
		subHits := 0
		for i := 0; i < cfg.MeasureQueries; i++ {
			if _, hit := sub.replica.Answer(gs.NextOfKind(workload.KindSerial).Query); hit {
				subHits++
			}
		}
		hrSub := float64(subHits) / float64(cfg.MeasureQueries)

		// One update burst, synced by both replicas.
		upd := e.updater()
		if _, err := upd.Apply(cfg.Updates); err != nil {
			return nil, err
		}
		if err := node.SyncAll(); err != nil {
			return nil, err
		}
		if err := sub.SyncAll(); err != nil {
			return nil, err
		}
		filterS.Add(round2(hrFilter), float64(node.ResyncTraffic.Updates()))
		subtreeS.Add(round2(hrSub), float64(sub.SyncTraffic.Updates()))
	}
	return fig, nil
}

// Figure7 regenerates update traffic vs hit ratio for the department query
// at two revolution intervals: subtree traffic is negligible (departments
// barely change) while the filter replica pays for revolution fetches,
// more so at the smaller interval.
func Figure7(cfg Config) (*metrics.Figure, error) {
	small, large := cfg.deptIntervals()
	fig := &metrics.Figure{
		ID: "figure7", Title: "Update traffic vs hit ratio — (&(dept=_)(div=_)) query",
		XLabel: "hit ratio", YLabel: "update traffic (entries)",
		Notes: []string{
			"filter traffic includes revolution fetches (component ii of Section 7.3)",
			"paper shape: R=10000 incurs less traffic than R=6000; subtree ≈ 0"},
	}
	sSmall := fig.AddSeries("filter R=6000")
	sLarge := fig.AddSeries("filter R=10000")
	sSub := fig.AddSeries("subtree-based")

	updPerPhase := cfg.Updates / 2
	for _, frac := range cfg.BudgetFractions {
		// Each measurement runs against a fresh environment so the update
		// streams are identical across budgets and intervals.
		for _, variant := range []struct {
			series   *metrics.Series
			interval int
		}{{sSmall, small}, {sLarge, large}} {
			e, err := buildEnv(cfg)
			if err != nil {
				return nil, err
			}
			budget := int(frac * float64(len(e.dir.Departments)))
			if budget < 1 {
				budget = 1
			}
			hr, node, err := e.runDynamicDept(budget, variant.interval, cfg.MeasureQueries, updPerPhase)
			if err != nil {
				return nil, err
			}
			variant.series.Add(round2(hr), float64(node.ResyncTraffic.Updates()+node.FetchTraffic.Updates()))
		}

		// Subtree replica: departments barely change, so its sync traffic
		// stays near zero.
		e, err := buildEnv(cfg)
		if err != nil {
			return nil, err
		}
		budget := int(frac * float64(len(e.dir.Departments)))
		if budget < 1 {
			budget = 1
		}
		gShare := workload.NewGenerator(e.dir, e.traceConfig())
		sample := make([]workload.TraceQuery, 3000)
		for i := range sample {
			sample[i] = gShare.NextOfKind(workload.KindDept)
		}
		sub, err := newSubtreeNode(e.eng, pickSubtrees(divisionCands(e.dir, sample), budget))
		if err != nil {
			return nil, err
		}
		gs := workload.NewGenerator(e.dir, e.traceConfig())
		subHits := 0
		for i := 0; i < cfg.MeasureQueries; i++ {
			if _, hit := sub.replica.Answer(gs.NextOfKind(workload.KindDept).Query); hit {
				subHits++
			}
		}
		if _, err := e.updater().Apply(cfg.Updates); err != nil {
			return nil, err
		}
		if err := sub.SyncAll(); err != nil {
			return nil, err
		}
		sSub.Add(round2(float64(subHits)/float64(cfg.MeasureQueries)), float64(sub.SyncTraffic.Updates()))
	}
	return fig, nil
}

// figure89 sweeps hit ratio against the number of stored filters for one
// query kind with three strategies: cached user queries only, generalized
// filters only, and both.
func figure89(cfg Config, kind workload.QueryKind, rules []selection.Rule, id, title string) (*metrics.Figure, error) {
	e, err := buildEnv(cfg)
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID: id, Title: title,
		XLabel: "# stored filters", YLabel: "hit ratio",
		Notes: []string{
			"user-query caching saturates once the window covers the temporal-locality span",
			"storing both adds the curves' complementary hits (paper: 0.5 at 200 filters for serialNumber)"},
	}
	userS := fig.AddSeries("user queries only")
	genS := fig.AddSeries("generalized only")
	bothS := fig.AddSeries("generalized + user")

	// Cap per-filter size at ~2 % of the population: the sweep counts
	// filters, and a bounded replica stores fine-grained ones.
	maxFilterSize := e.dir.EmployeeCount / 50
	if maxFilterSize < 5 {
		maxFilterSize = 5
	}

	counts := []int{10, 25, 50, 100, 150, 200, 300}
	for _, n := range counts {
		// User queries only: cache window of n, no stored filters.
		nodeU, err := newFilterNode(e.eng, nil, n)
		if err != nil {
			return nil, err
		}
		gU := workload.NewGenerator(e.dir, e.traceConfig())
		userS.Add(float64(n), e.runHits(nodeU, gU, kind, cfg.MeasureQueries, true))

		// Generalized only: the n best candidates by benefit, capped at
		// fine granularity (a bounded replica stores small filters).
		gW := workload.NewGenerator(e.dir, e.traceConfig())
		sel := e.warmSelector(rules, gW, kind, cfg.WarmupQueries, 1<<30)
		top := sel.TopCandidatesLimit(n, maxFilterSize)
		nodeG, err := newFilterNode(e.eng, nil, 0)
		if err != nil {
			return nil, err
		}
		for _, q := range top {
			if err := nodeG.AddFilter(q); err != nil {
				return nil, err
			}
		}
		gG := workload.NewGenerator(e.dir, e.traceConfig())
		genS.Add(float64(n), e.runHits(nodeG, gG, kind, cfg.MeasureQueries, false))

		// Both: the user-query cache saturates at roughly the temporal
		// locality span, so it gets at most 50 slots; the remaining budget
		// goes to generalized filters.
		cacheSlots := n / 2
		if cacheSlots > 50 {
			cacheSlots = 50
		}
		gW2 := workload.NewGenerator(e.dir, e.traceConfig())
		sel2 := e.warmSelector(rules, gW2, kind, cfg.WarmupQueries, 1<<30)
		nodeB, err := newFilterNode(e.eng, nil, cacheSlots)
		if err != nil {
			return nil, err
		}
		for _, q := range sel2.TopCandidatesLimit(n-cacheSlots, maxFilterSize) {
			if err := nodeB.AddFilter(q); err != nil {
				return nil, err
			}
		}
		gB := workload.NewGenerator(e.dir, e.traceConfig())
		bothS.Add(float64(n), e.runHits(nodeB, gB, kind, cfg.MeasureQueries, true))
	}
	return fig, nil
}

// Figure8 regenerates hit ratio vs number of stored filters for the
// serial-number query.
func Figure8(cfg Config) (*metrics.Figure, error) {
	return figure89(cfg, workload.KindSerial, serialRules(),
		"figure8", "Hit ratio vs # of filters — (serialNumber=_) query")
}

// Figure9 regenerates hit ratio vs number of stored filters for the
// department query.
func Figure9(cfg Config) (*metrics.Figure, error) {
	return figure89(cfg, workload.KindDept, deptRules(),
		"figure9", "Hit ratio vs # of filters — (&(dept=_)(div=_)) query")
}

// MailLocation regenerates the Section 7.2(c) observations: mail local
// parts are unorganized, so generalization is ineffective and only
// temporal-locality caching helps; the small location subtree is fully
// replicated for a hit ratio of 1.
func MailLocation(cfg Config) (*metrics.Figure, error) {
	e, err := buildEnv(cfg)
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID: "mail-location", Title: "Other query types (Section 7.2c)",
		XLabel: "case", YLabel: "hit ratio",
		Notes: []string{
			"x=1 mail, generalized filters only (ineffective: unorganized local part)",
			"x=2 mail, cached user queries only (temporal locality)",
			"x=3 location, full location tree replicated (hit ratio 1 at tiny size)"},
	}
	s := fig.AddSeries("hit ratio")

	// Mail with prefix generalization on the local part.
	mailRules := []selection.Rule{selection.PrefixRule{Attr: "mail", PrefixLen: 5}}
	gW := workload.NewGenerator(e.dir, e.traceConfig())
	sel := e.warmSelector(mailRules, gW, workload.KindMail, cfg.WarmupQueries, 1<<30)
	nodeG, err := newFilterNode(e.eng, nil, 0)
	if err != nil {
		return nil, err
	}
	for _, q := range sel.TopCandidatesLimit(200, e.dir.EmployeeCount/50+5) {
		if err := nodeG.AddFilter(q); err != nil {
			return nil, err
		}
	}
	gM := workload.NewGenerator(e.dir, e.traceConfig())
	s.Add(1, e.runHits(nodeG, gM, workload.KindMail, cfg.MeasureQueries, false))

	nodeC, err := newFilterNode(e.eng, nil, 100)
	if err != nil {
		return nil, err
	}
	gC := workload.NewGenerator(e.dir, e.traceConfig())
	s.Add(2, e.runHits(nodeC, gC, workload.KindMail, cfg.MeasureQueries, true))

	// Location: replicate the entire location tree with one presence
	// filter, which semantically contains every (location=X) lookup.
	nodeL, err := newFilterNode(e.eng, nil, 0)
	if err != nil {
		return nil, err
	}
	locQ := query.MustNew("", query.ScopeSubtree, "(location=*)")
	if err := nodeL.AddFilter(locQ); err != nil {
		return nil, err
	}
	gL := workload.NewGenerator(e.dir, e.traceConfig())
	s.Add(3, e.runHits(nodeL, gL, workload.KindLocation, cfg.MeasureQueries, false))
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("location tree size: %d of %d total entries", nodeL.Replica.EntryCount(), e.dir.Master.Len()))
	return fig, nil
}

// All runs every experiment.
func All(cfg Config) ([]*metrics.Figure, error) {
	type exp struct {
		name string
		fn   func(Config) (*metrics.Figure, error)
	}
	exps := []exp{
		{"table1", Table1},
		{"figure4", Figure4},
		{"figure5", Figure5},
		{"figure6", Figure6},
		{"figure7", Figure7},
		{"figure8", Figure8},
		{"figure9", Figure9},
		{"mail-location", MailLocation},
		{"overhead", Overhead},
		{"containment-stats", ContainmentStats},
	}
	var out []*metrics.Figure
	for _, x := range exps {
		fig, err := x.fn(cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", x.name, err)
		}
		out = append(out, fig)
	}
	return out, nil
}

// ByID runs one experiment by its figure/table id.
func ByID(id string, cfg Config) (*metrics.Figure, error) {
	switch id {
	case "table1":
		return Table1(cfg)
	case "fig4", "figure4":
		return Figure4(cfg)
	case "fig5", "figure5":
		return Figure5(cfg)
	case "fig6", "figure6":
		return Figure6(cfg)
	case "fig7", "figure7":
		return Figure7(cfg)
	case "fig8", "figure8":
		return Figure8(cfg)
	case "fig9", "figure9":
		return Figure9(cfg)
	case "mail-location":
		return MailLocation(cfg)
	case "overhead":
		return Overhead(cfg)
	case "containment-stats":
		return ContainmentStats(cfg)
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
}

func round2(x float64) float64 {
	return float64(int(x*100+0.5)) / 100
}
