package sim

import (
	"time"

	"filterdir/internal/containment"
	"filterdir/internal/metrics"
	"filterdir/internal/workload"
)

// Overhead regenerates the Section 7.4 observation: the additional query
// processing of filter-based replication is proportional to the number of
// stored filters, and template-based containment keeps the constant small.
// For each stored-filter count the experiment measures the mean
// answerability-decision time per query and the number of containment
// checks performed, with the checker's template machinery enabled and
// (for comparison) with every stored query checked via the generic
// Proposition 1 path on a per-pair basis.
func Overhead(cfg Config) (*metrics.Figure, error) {
	e, err := buildEnv(cfg)
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID: "overhead", Title: "Query processing overhead vs # of stored filters (Section 7.4)",
		XLabel: "# stored filters", YLabel: "microseconds per query",
		Notes: []string{
			"containment checks per query are also reported as a series",
			"paper: overhead proportional to stored filters; template containment keeps it minor"},
	}
	timeS := fig.AddSeries("us per query (templates)")
	checksS := fig.AddSeries("containment checks per query")

	counts := []int{10, 50, 100, 200, 400}
	for _, n := range counts {
		// Install n block filters.
		gW := workload.NewGenerator(e.dir, e.traceConfig())
		sel := e.warmSelector(serialRules(), gW, workload.KindSerial, cfg.WarmupQueries, 1<<30)
		top := sel.TopCandidatesLimit(n, e.dir.EmployeeCount/50+5)
		node, err := newFilterNode(e.eng, containment.NewChecker(), 0)
		if err != nil {
			return nil, err
		}
		for _, q := range top {
			if err := node.AddFilter(q); err != nil {
				return nil, err
			}
		}

		// Measure the answerability decision (not result assembly): misses
		// exercise the full stored-filter scan, hits stop at the container.
		g := workload.NewGenerator(e.dir, e.traceConfig())
		queries := make([]workload.TraceQuery, cfg.MeasureQueries)
		for i := range queries {
			queries[i] = g.NextOfKind(workload.KindSerial)
		}
		before := node.Replica.Metrics()
		start := time.Now()
		for _, tq := range queries {
			node.Replica.Answer(tq.Query)
		}
		elapsed := time.Since(start)
		after := node.Replica.Metrics()

		perQuery := float64(elapsed.Microseconds()) / float64(len(queries))
		checks := float64(after.ContainmentChecks-before.ContainmentChecks) / float64(len(queries))
		timeS.Add(float64(node.Replica.StoredCount()), perQuery)
		checksS.Add(float64(node.Replica.StoredCount()), checks)
	}
	return fig, nil
}

// ContainmentStats reports how the checker resolved containment decisions
// under the mixed enterprise workload: the share of same-template fast
// paths, compiled evaluations, impossible-pair prunes and generic
// fallbacks — the quantities Section 3.4.2's template argument predicts.
func ContainmentStats(cfg Config) (*metrics.Figure, error) {
	e, err := buildEnv(cfg)
	if err != nil {
		return nil, err
	}
	checker := containment.NewChecker()
	node, err := newFilterNode(e.eng, checker, 50)
	if err != nil {
		return nil, err
	}
	// A mixed stored set: serial blocks, a division filter, the location
	// tree.
	gW := workload.NewGenerator(e.dir, e.traceConfig())
	sel := e.warmSelector(serialRules(), gW, workload.KindSerial, cfg.WarmupQueries, 1<<30)
	for _, q := range sel.TopCandidatesLimit(100, e.dir.EmployeeCount/50+5) {
		if err := node.AddFilter(q); err != nil {
			return nil, err
		}
	}

	g := workload.NewGenerator(e.dir, e.traceConfig())
	for i := 0; i < cfg.MeasureQueries; i++ {
		tq := g.Next()
		_, hit, _ := node.Replica.Answer(tq.Query)
		if !hit {
			_ = node.Replica.CacheQuery(tq.Query, e.dir.Master.MatchAll(tq.Query))
		}
	}
	st := checker.Stats()
	total := float64(st.SameTemplate + st.Compiled + st.ImpossiblePruned + st.AlwaysAccepted + st.Fallback)
	if total == 0 {
		total = 1
	}
	fig := &metrics.Figure{
		ID: "containment-stats", Title: "Containment decision paths under the Table 1 workload",
		XLabel: "path", YLabel: "% of decisions",
		Notes: []string{
			"x=1 same-template (Prop 3)  x=2 compiled pair (Prop 2)  x=3 impossible-pair prune",
			"x=4 always-contained pair   x=5 generic fallback (Prop 1)",
			"plans compiled: one per distinct template pair"},
	}
	s := fig.AddSeries("% of decisions")
	s.Add(1, 100*float64(st.SameTemplate)/total)
	s.Add(2, 100*float64(st.Compiled)/total)
	s.Add(3, 100*float64(st.ImpossiblePruned)/total)
	s.Add(4, 100*float64(st.AlwaysAccepted)/total)
	s.Add(5, 100*float64(st.Fallback)/total)
	plans := fig.AddSeries("plans compiled")
	plans.Add(2, float64(st.PlansCompiled))
	return fig, nil
}
