package sim

import (
	"fmt"
	"math/rand"
	"strconv"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
)

// This file exports the synthetic-DIT generators used by the convergence
// oracle (internal/oracle): a small flat subtree whose entries carry two
// low-cardinality attributes, so random modifies flip filter membership
// often enough to exercise every ReSync classification (E01 moved in, E10
// moved out, E11 changed within) within short histories.

// SynthSuffix is the suffix of the oracle's synthetic DIT.
const SynthSuffix = "ou=oracle,o=xyz"

// SynthConfig sizes the synthetic DIT and its operation generator. All
// randomness derives from Seed; equal configs generate equal histories.
type SynthConfig struct {
	Seed    int64
	Entries int // initial entry count (default 12)
	Groups  int // cardinality of the grp attribute domain (default 3)
	Vals    int // cardinality of the val attribute domain (default 4)
	// JournalLimit bounds the master journal (0 = unbounded); small limits
	// force full-reload degradation under churn.
	JournalLimit int
	// Shards overrides the store's shard count (0 = store default). The
	// oracle's shard sweep runs identical histories at several counts and
	// asserts byte-identical behavior.
	Shards int
}

func (c *SynthConfig) fillDefaults() {
	if c.Entries <= 0 {
		c.Entries = 12
	}
	if c.Groups <= 0 {
		c.Groups = 3
	}
	if c.Vals <= 0 {
		c.Vals = 4
	}
}

// SynthBase returns the parsed synthetic suffix.
func SynthBase() dn.DN { return dn.MustParse(SynthSuffix) }

// SynthEntry builds the entry for one synthetic leaf. The same function is
// used to populate the real store and the oracle's reference model, so the
// two agree byte-for-byte on entry content.
func SynthEntry(name string, grp, val int) *entry.Entry {
	e := entry.New(dn.MustParse("cn=" + name + "," + SynthSuffix))
	e.Put("objectclass", "device")
	e.Put("cn", name)
	e.Put("grp", strconv.Itoa(grp))
	e.Put("val", strconv.Itoa(val))
	return e
}

// initialLeaf derives the deterministic initial attribute values of leaf i.
func initialLeaf(cfg SynthConfig, i int) (name string, grp, val int) {
	return "e" + strconv.Itoa(i+1), i % cfg.Groups, i % cfg.Vals
}

// BuildSynthStore creates the synthetic master DIT: the suffix entry plus
// cfg.Entries leaves named e1..eN with deterministic grp/val values.
func BuildSynthStore(cfg SynthConfig) (*dit.Store, error) {
	cfg.fillDefaults()
	var opts []dit.Option
	if cfg.JournalLimit > 0 {
		opts = append(opts, dit.WithJournalLimit(cfg.JournalLimit))
	}
	if cfg.Shards > 0 {
		opts = append(opts, dit.WithShards(cfg.Shards))
	}
	st, err := dit.NewStore([]string{SynthSuffix}, opts...)
	if err != nil {
		return nil, err
	}
	root := entry.New(SynthBase())
	root.Put("objectclass", "organizationalUnit")
	root.Put("ou", "oracle")
	if err := st.Add(root); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Entries; i++ {
		name, grp, val := initialLeaf(cfg, i)
		if err := st.Add(SynthEntry(name, grp, val)); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// OpKind identifies one synthetic DIT operation.
type OpKind int

// The four LDAP update operations over the synthetic DIT.
const (
	OpAdd OpKind = iota + 1
	OpDelete
	OpModify
	OpModDN
)

// Op is one randomly generated directory operation. Name is the target
// leaf's cn; NewName is the renamed cn for OpModDN; Grp/Val carry the
// attribute values for OpAdd and OpModify.
type Op struct {
	Kind     OpKind
	Name     string
	NewName  string
	Grp, Val int
}

// DN returns the target DN of the operation.
func (op Op) DN() dn.DN { return dn.MustParse("cn=" + op.Name + "," + SynthSuffix) }

// NewDN returns the post-rename DN of an OpModDN.
func (op Op) NewDN() dn.DN { return dn.MustParse("cn=" + op.NewName + "," + SynthSuffix) }

func (op Op) String() string {
	switch op.Kind {
	case OpAdd:
		return fmt.Sprintf("add %s grp=%d val=%d", op.Name, op.Grp, op.Val)
	case OpDelete:
		return fmt.Sprintf("delete %s", op.Name)
	case OpModify:
		return fmt.Sprintf("modify %s grp=%d val=%d", op.Name, op.Grp, op.Val)
	case OpModDN:
		return fmt.Sprintf("moddn %s -> %s", op.Name, op.NewName)
	default:
		return fmt.Sprintf("op(%d)", int(op.Kind))
	}
}

// ApplyOp applies a synthetic operation to a store. OpModify replaces both
// grp and val; OpModDN is a pure rename under the synthetic suffix.
func ApplyOp(st *dit.Store, op Op) error {
	switch op.Kind {
	case OpAdd:
		return st.Add(SynthEntry(op.Name, op.Grp, op.Val))
	case OpDelete:
		return st.Delete(op.DN())
	case OpModify:
		return st.Modify(op.DN(), []dit.Mod{
			{Op: dit.ModReplace, Attr: "grp", Values: []string{strconv.Itoa(op.Grp)}},
			{Op: dit.ModReplace, Attr: "val", Values: []string{strconv.Itoa(op.Val)}},
		})
	case OpModDN:
		return st.ModifyDN(op.DN(), dn.RDN{Attr: "cn", Value: op.NewName}, SynthBase())
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
}

// OpGen generates a random but deterministic operation stream over the
// synthetic DIT. It tracks the live leaf set itself, so generation does not
// depend on a store: the same seed always yields the same ops.
type OpGen struct {
	cfg  SynthConfig
	rng  *rand.Rand
	live []string
	seq  int
}

// NewOpGen creates a generator matching the initial state produced by
// BuildSynthStore with the same config.
func NewOpGen(cfg SynthConfig) *OpGen {
	cfg.fillDefaults()
	g := &OpGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), seq: cfg.Entries}
	for i := 0; i < cfg.Entries; i++ {
		name, _, _ := initialLeaf(cfg, i)
		g.live = append(g.live, name)
	}
	return g
}

// Next generates the next operation, updating the tracked live set.
func (g *OpGen) Next() Op {
	roll := g.rng.Float64()
	// Bias toward adds when the population halves, so histories keep churn.
	if len(g.live) == 0 || (len(g.live) < g.cfg.Entries/2 && roll < 0.5) {
		return g.genAdd()
	}
	switch {
	case roll < 0.50:
		i := g.rng.Intn(len(g.live))
		return Op{Kind: OpModify, Name: g.live[i],
			Grp: g.rng.Intn(g.cfg.Groups), Val: g.rng.Intn(g.cfg.Vals)}
	case roll < 0.70:
		return g.genAdd()
	case roll < 0.85:
		i := g.rng.Intn(len(g.live))
		op := Op{Kind: OpDelete, Name: g.live[i]}
		g.live = append(g.live[:i], g.live[i+1:]...)
		return op
	default:
		i := g.rng.Intn(len(g.live))
		g.seq++
		op := Op{Kind: OpModDN, Name: g.live[i], NewName: "e" + strconv.Itoa(g.seq)}
		g.live[i] = op.NewName
		return op
	}
}

func (g *OpGen) genAdd() Op {
	g.seq++
	op := Op{Kind: OpAdd, Name: "e" + strconv.Itoa(g.seq),
		Grp: g.rng.Intn(g.cfg.Groups), Val: g.rng.Intn(g.cfg.Vals)}
	g.live = append(g.live, op.Name)
	return op
}
