// Package sim is the experiment harness: it wires the synthetic directory,
// the trace generators, the two replica models, ReSync synchronization and
// filter selection into the scenarios that regenerate every table and
// figure of the paper's evaluation (Section 7). Each experiment returns a
// metrics.Figure whose series carry the same quantities the paper plots.
package sim

import (
	"fmt"
	"sort"

	"filterdir/internal/containment"
	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
	"filterdir/internal/workload"
)

// Config sizes the experiments. The defaults keep `go test` fast; cmd/dirsim
// raises them for full runs.
type Config struct {
	// Employees is the directory population.
	Employees int
	// MeasureQueries is the number of queries per measured point.
	MeasureQueries int
	// WarmupQueries feed the selector before measurement.
	WarmupQueries int
	// BudgetFractions are the replica-size sweep points (fraction of person
	// entries).
	BudgetFractions []float64
	// Updates is the master-side update count for traffic experiments.
	Updates int
	// Seed shifts all generator seeds.
	Seed int64
	// PayloadBytes pads employee entries (entry ≈ 6 KB in the paper).
	PayloadBytes int
}

// DefaultConfig returns the test-scale configuration.
func DefaultConfig() Config {
	return Config{
		Employees:       4000,
		MeasureQueries:  4000,
		WarmupQueries:   4000,
		BudgetFractions: []float64{0.02, 0.05, 0.10, 0.20, 0.35},
		Updates:         2000,
		Seed:            1,
		PayloadBytes:    256,
	}
}

// env is one built experiment environment.
type env struct {
	cfg Config
	dir *workload.Directory
	eng *resync.Engine
	upd *workload.Updater
}

// updater returns the environment's single update stream (created lazily;
// a second stream with the same seed would replay colliding entry names).
func (e *env) updater() *workload.Updater {
	if e.upd == nil {
		ucfg := workload.DefaultUpdateConfig()
		ucfg.Seed = e.cfg.Seed + 1000
		e.upd = workload.NewUpdater(e.dir, ucfg)
	}
	return e.upd
}

func buildEnv(cfg Config) (*env, error) {
	dcfg := workload.DefaultDirectoryConfig(cfg.Employees)
	dcfg.Seed = cfg.Seed
	dcfg.PayloadBytes = cfg.PayloadBytes
	dir, err := workload.BuildDirectory(dcfg)
	if err != nil {
		return nil, fmt.Errorf("build directory: %w", err)
	}
	return &env{cfg: cfg, dir: dir, eng: resync.NewEngine(dir.Master)}, nil
}

func (e *env) traceConfig() workload.TraceConfig {
	tc := workload.DefaultTraceConfig()
	tc.Seed = e.cfg.Seed + 100
	return tc
}

// sizeOf counts the entries a candidate filter matches on the master.
func (e *env) sizeOf(q query.Query) int {
	return len(e.dir.Master.MatchAll(q))
}

// --- Filter-replica node ----------------------------------------------------

// filterNode is the experiment-side handle for an adaptive filter replica:
// the library type already separates the two update-traffic components of
// Section 7.3 (resync traffic for stored filters, fetch traffic from
// revolutions bringing in new filters).
type filterNode = replica.AdaptiveReplica

func newFilterNode(eng *resync.Engine, checker *containment.Checker, cacheCap int) (*filterNode, error) {
	var opts []replica.FROption
	opts = append(opts, replica.WithContentIndexes("serialnumber", "mail", "dept", "location"))
	if checker != nil {
		opts = append(opts, replica.WithChecker(checker))
	}
	if cacheCap > 0 {
		opts = append(opts, replica.WithCacheCapacity(cacheCap))
	}
	fr, err := replica.NewFilterReplica(opts...)
	if err != nil {
		return nil, err
	}
	// The experiments drive selection explicitly (ApplyDelta), so no
	// selector is attached here.
	return replica.NewAdaptiveReplica(fr, nil, replica.LocalSupplier{Engine: eng}), nil
}

// --- Subtree-replica node -----------------------------------------------------

// subtreeNode bundles a subtree replica with one ReSync session per
// replicated context for uniform traffic accounting.
type subtreeNode struct {
	replica *replica.SubtreeReplica
	eng     *resync.Engine
	cookies []string
	specs   []query.Query

	SyncTraffic resync.Traffic
}

// newSubtreeNode replicates the given subtree suffixes in full.
func newSubtreeNode(eng *resync.Engine, suffixes []dn.DN) (*subtreeNode, error) {
	ctxs := make([]dit.Context, len(suffixes))
	for i, s := range suffixes {
		ctxs[i] = dit.Context{Suffix: s}
	}
	sr, err := replica.NewSubtreeReplica(ctxs)
	if err != nil {
		return nil, err
	}
	n := &subtreeNode{replica: sr, eng: eng}
	for _, s := range suffixes {
		spec := query.Query{Base: s, Scope: query.ScopeSubtree}
		res, err := eng.Begin(spec)
		if err != nil {
			return nil, err
		}
		// Initial load: parents before children.
		updates := res.Updates
		sort.Slice(updates, func(i, j int) bool {
			return updates[i].DN.Depth() < updates[j].DN.Depth()
		})
		for _, u := range updates {
			if err := sr.Store().Upsert(u.Entry); err != nil {
				return nil, err
			}
		}
		n.cookies = append(n.cookies, res.Cookie)
		n.specs = append(n.specs, spec)
	}
	return n, nil
}

// SyncAll polls every context session, adopting each returned cookie —
// presenting it on the next poll acknowledges this exchange.
func (n *subtreeNode) SyncAll() error {
	for i, cookie := range n.cookies {
		res, err := n.eng.Poll(cookie)
		if err != nil {
			return err
		}
		n.cookies[i] = res.Cookie
		for _, u := range res.Updates {
			n.SyncTraffic.Add(u)
			switch u.Action {
			case resync.ActionAdd, resync.ActionModify:
				if err := n.replica.Store().Upsert(u.Entry); err != nil {
					return err
				}
			case resync.ActionDelete:
				_ = n.replica.Store().RemoveAny(u.DN)
			}
		}
		_ = n.specs[i]
	}
	return nil
}

// subtreeCand is one subtree a subtree replica could hold, with its size
// and observed access share.
type subtreeCand struct {
	Suffix dn.DN
	Size   int
	Share  float64
}

// pickSubtrees greedily selects whole subtrees by access-share / size ratio
// under an entry budget — the best a subtree replica can do, since it
// cannot replicate part of a flat container (Section 3.3).
func pickSubtrees(cands []subtreeCand, budget int) []dn.DN {
	sorted := append([]subtreeCand(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		ri := sorted[i].Share / float64(sorted[i].Size)
		rj := sorted[j].Share / float64(sorted[j].Size)
		if ri != rj {
			return ri > rj
		}
		if sorted[i].Size != sorted[j].Size {
			return sorted[i].Size < sorted[j].Size
		}
		return sorted[i].Suffix.Norm() < sorted[j].Suffix.Norm()
	})
	var out []dn.DN
	used := 0
	for _, c := range sorted {
		if c.Size <= 0 || used+c.Size > budget {
			continue
		}
		out = append(out, c.Suffix)
		used += c.Size
	}
	return out
}

// countryCands derives the country-subtree candidates with access shares
// measured from a sample trace of people queries.
func countryCands(dir *workload.Directory, sample []workload.TraceQuery) []subtreeCand {
	counts := make(map[string]int)
	total := 0
	for _, tq := range sample {
		if tq.Kind != workload.KindSerial && tq.Kind != workload.KindMail {
			continue
		}
		vals := tq.Query.Filter.SlotValues()
		if len(vals) == 0 {
			continue
		}
		total++
		if tq.Kind == workload.KindSerial && len(vals[0]) >= 2 {
			counts[vals[0][:2]]++ // serial country code
		}
	}
	out := make([]subtreeCand, 0, len(dir.Config.Countries))
	for ci, c := range dir.Config.Countries {
		code := fmt.Sprintf("%02d", ci+10)
		share := 0.0
		if total > 0 {
			share = float64(counts[code]) / float64(total)
		}
		out = append(out, subtreeCand{
			Suffix: dn.MustParse(fmt.Sprintf("c=%s,%s", c.Code, workload.Suffix)),
			Size:   c.Employees + 1,
			Share:  share,
		})
	}
	return out
}

// divisionCands derives the division-subtree candidates with access shares
// measured from a sample trace of department queries.
func divisionCands(dir *workload.Directory, sample []workload.TraceQuery) []subtreeCand {
	counts := make(map[string]int)
	total := 0
	for _, tq := range sample {
		if tq.Kind != workload.KindDept {
			continue
		}
		vals := tq.Query.Filter.SlotValues()
		if len(vals) < 2 {
			continue
		}
		total++
		counts[vals[1]]++ // div slot of (&(dept=_)(div=_))
	}
	out := make([]subtreeCand, 0, len(dir.Divisions))
	for di, name := range dir.Divisions {
		share := 0.0
		if total > 0 {
			share = float64(counts[name]) / float64(total)
		}
		out = append(out, subtreeCand{
			Suffix: dn.MustParse(fmt.Sprintf("ou=%s,ou=divisions,%s", name, workload.Suffix)),
			Size:   len(dir.ByDivision[di]) + 1,
			Share:  share,
		})
	}
	return out
}
