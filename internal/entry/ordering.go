package entry

import (
	"strconv"
	"strings"
)

// Ordering identifies the ordering matching rule of an attribute type.
// LDAP attributes have syntaxes; ordering comparisons on an INTEGER-syntax
// attribute (integerOrderingMatch) are numeric and values that do not parse
// as integers simply cannot exist for such attributes, while string-syntax
// attributes order lexicographically on the normalized value
// (caseIgnoreOrderingMatch). Keeping the two regimes separate is what makes
// the containment package's range-emptiness reasoning sound: the same total
// order is used at evaluation time and at containment-analysis time.
type Ordering int

const (
	// OrderingString compares normalized values lexicographically.
	OrderingString Ordering = iota + 1
	// OrderingInteger compares values numerically; non-integer values do not
	// match ordering assertions at all.
	OrderingInteger
)

// integerAttrs lists the attribute types with INTEGER syntax in this system.
// The set is fixed at startup; it mirrors the enterprise schema the paper's
// directory uses (serialNumber, departmentNumber, dept are numeric IDs).
var integerAttrs = map[string]bool{
	"age":              true,
	"serialnumber":     true,
	"departmentnumber": true,
	"employeenumber":   true,
	"uidnumber":        true,
	"gidnumber":        true,
	"dept":             true,
}

// OrderingFor returns the ordering rule for an attribute type.
func OrderingFor(attr string) Ordering {
	if integerAttrs[strings.ToLower(attr)] {
		return OrderingInteger
	}
	return OrderingString
}

// ParseInt parses an attribute value as the INTEGER syntax (optional sign,
// decimal digits, surrounding space ignored).
func ParseInt(v string) (int64, bool) {
	n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	return n, err == nil
}

// CompareOrdered compares a and b under the given ordering rule. For
// OrderingInteger, ok is false when either value fails to parse (the
// comparison is then undefined and ordering assertions must not match).
func CompareOrdered(kind Ordering, a, b string) (cmp int, ok bool) {
	if kind == OrderingInteger {
		na, okA := ParseInt(a)
		nb, okB := ParseInt(b)
		if !okA || !okB {
			return 0, false
		}
		switch {
		case na < nb:
			return -1, true
		case na > nb:
			return 1, true
		default:
			return 0, true
		}
	}
	an, bn := NormValue(a), NormValue(b)
	switch {
	case an < bn:
		return -1, true
	case an > bn:
		return 1, true
	default:
		return 0, true
	}
}
