package entry

import (
	"testing"
	"testing/quick"

	"filterdir/internal/dn"
)

func person(t *testing.T) *Entry {
	t.Helper()
	e := New(dn.MustParse("cn=John Doe,ou=research,c=us,o=xyz"))
	e.Put("cn", "John Doe", "John M Doe")
	e.Put("sn", "Doe")
	e.Put("objectclass", "top", "person", "organizationalPerson", "inetOrgPerson")
	e.Put("telephoneNumber", "2618-2618")
	e.Put("mail", "john@us.xyz.com")
	e.Put("serialNumber", "0456")
	e.Put("departmentNumber", "80")
	return e
}

func TestPutAddDelete(t *testing.T) {
	e := person(t)
	if got := e.First("sn"); got != "Doe" {
		t.Errorf("First(sn) = %q", got)
	}
	if !e.Has("SERIALNUMBER") {
		t.Error("attribute names must be case-insensitive")
	}
	e.Add("cn", "john doe") // duplicate, case-insensitive
	if n := len(e.Values("cn")); n != 2 {
		t.Errorf("duplicate Add changed value count: %d", n)
	}
	e.Add("cn", "Johnny")
	if n := len(e.Values("cn")); n != 3 {
		t.Errorf("Add failed: %d values", n)
	}
	if err := e.DeleteValues("cn", "Johnny"); err != nil {
		t.Fatal(err)
	}
	if n := len(e.Values("cn")); n != 2 {
		t.Errorf("DeleteValues failed: %d values", n)
	}
	if err := e.DeleteValues("telephoneNumber"); err != nil {
		t.Fatal(err)
	}
	if e.Has("telephoneNumber") {
		t.Error("attribute not removed")
	}
	if err := e.DeleteValues("nosuch"); err == nil {
		t.Error("expected ErrNoSuchAttribute")
	}
	// Deleting all values one by one removes the attribute.
	if err := e.DeleteValues("sn", "doe"); err != nil {
		t.Fatal(err)
	}
	if e.Has("sn") {
		t.Error("attribute with no values must disappear")
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := person(t)
	c := e.Clone()
	c.Put("sn", "Smith")
	c.Add("cn", "Other")
	if e.First("sn") != "Doe" {
		t.Error("Clone is not deep: sn leaked")
	}
	if len(e.Values("cn")) != 2 {
		t.Error("Clone is not deep: cn leaked")
	}
	if !e.Clone().Equal(e) {
		t.Error("Clone must Equal original")
	}
}

func TestSelect(t *testing.T) {
	e := person(t)
	sel := e.Select([]string{"cn", "mail"})
	if !sel.Has("cn") || !sel.Has("mail") || sel.Has("sn") {
		t.Errorf("Select wrong attrs: %v", sel.AttributeNames())
	}
	all := e.Select([]string{"*"})
	if len(all.AttributeNames()) != len(e.AttributeNames()) {
		t.Error("Select(*) must keep all attributes")
	}
	none := e.Select(nil)
	if len(none.AttributeNames()) != len(e.AttributeNames()) {
		t.Error("Select(nil) must keep all attributes")
	}
}

func TestEqual(t *testing.T) {
	a, b := person(t), person(t)
	if !a.Equal(b) {
		t.Error("identical entries must be equal")
	}
	b.Put("sn", "DOE") // case-insensitive value
	if !a.Equal(b) {
		t.Error("value case must not affect equality")
	}
	b.Put("sn", "Smith")
	if a.Equal(b) {
		t.Error("different values must not be equal")
	}
	c := person(t)
	c.Put("extra", "x")
	if a.Equal(c) {
		t.Error("extra attribute must break equality")
	}
}

func TestByteSize(t *testing.T) {
	e := person(t)
	s := e.ByteSize()
	if s <= 0 {
		t.Fatalf("ByteSize = %d", s)
	}
	e.Put("description", string(make([]byte, 1000)))
	if e.ByteSize() < s+1000 {
		t.Errorf("ByteSize did not grow with payload: %d -> %d", s, e.ByteSize())
	}
}

func TestMatchingRules(t *testing.T) {
	if !EqualValues("John  Doe", "john doe") {
		t.Error("EqualValues must fold case and spaces")
	}
	if CompareValues("9", "10") >= 0 {
		t.Error("integer-aware ordering: 9 < 10")
	}
	if CompareValues("abc", "abd") >= 0 {
		t.Error("lexicographic ordering broken")
	}
	if CompareValues("10", "10") != 0 {
		t.Error("equal integers must compare 0")
	}
	if CompareValues("2", "10abc") <= 0 {
		t.Error("mixed numeric/non-numeric falls back to lexicographic ('2' > '10abc')")
	}
}

func TestMatchSubstring(t *testing.T) {
	tests := []struct {
		value, initial string
		any            []string
		final          string
		want           bool
	}{
		{"smith", "smi", nil, "", true},
		{"smith", "", nil, "ith", true},
		{"smith", "s", []string{"it"}, "h", true},
		{"smith", "smi", nil, "xx", false},
		{"John Doe", "john", nil, "doe", true},
		{"abcabc", "a", []string{"b", "b"}, "c", true},
		{"abc", "a", []string{"bc"}, "c", false}, // any consumes bc, final c can't match
		{"0456", "04", nil, "", true},
		{"0456", "05", nil, "", false},
		{"anything", "", nil, "", true}, // pure presence-like pattern
	}
	for _, tt := range tests {
		got := MatchSubstring(tt.value, tt.initial, tt.any, tt.final)
		if got != tt.want {
			t.Errorf("MatchSubstring(%q, %q, %v, %q) = %v, want %v",
				tt.value, tt.initial, tt.any, tt.final, got, tt.want)
		}
	}
}

func TestQuickCompareValuesAntisymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return CompareValues(a, b) == -CompareValues(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubstringPrefixConsistent(t *testing.T) {
	// If initial p matches value v, then any shorter prefix of p also matches.
	f := func(v string, n uint8) bool {
		if len(v) == 0 {
			return true
		}
		cut := int(n) % (len(v) + 1)
		p := v[:cut]
		return MatchSubstring(v, p, nil, "") || p != NormValue(p) || v != NormValue(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchemaValidate(t *testing.T) {
	s := DefaultSchema()
	e := person(t)
	if err := s.Validate(e); err != nil {
		t.Fatalf("valid inetOrgPerson rejected: %v", err)
	}
	bad := person(t)
	bad.DeleteValues("sn")
	if err := s.Validate(bad); err == nil {
		t.Error("missing required sn must fail validation")
	}
	noClass := New(dn.MustParse("cn=x,o=xyz"))
	noClass.Put("cn", "x")
	if err := s.Validate(noClass); err == nil {
		t.Error("entry without objectclass must fail validation")
	}
	unknown := New(dn.MustParse("cn=x,o=xyz"))
	unknown.Put("objectclass", "martian").Put("cn", "x")
	if err := s.Validate(unknown); err == nil {
		t.Error("unknown objectclass must fail validation")
	}
}

func TestSchemaInheritance(t *testing.T) {
	s := DefaultSchema()
	// inetOrgPerson inherits Must cn,sn from person.
	e := New(dn.MustParse("cn=x,o=xyz"))
	e.Put("objectclass", "inetOrgPerson").Put("cn", "x")
	if err := s.Validate(e); err == nil {
		t.Error("inherited required attribute sn must be enforced")
	}
	e.Put("sn", "x")
	if err := s.Validate(e); err != nil {
		t.Errorf("entry with inherited requirements satisfied rejected: %v", err)
	}
}

func TestSchemaCycleDetection(t *testing.T) {
	s := NewSchema()
	s.Register(ObjectClassDef{Name: "a", Super: "b"})
	s.Register(ObjectClassDef{Name: "b", Super: "a"})
	e := New(dn.MustParse("cn=x,o=xyz"))
	e.Put("objectclass", "a").Put("cn", "x")
	if err := s.Validate(e); err == nil {
		t.Error("class cycle must be reported")
	}
}
