// Package entry models LDAP directory entries: sets of attribute/value pairs
// identified by a distinguished name, together with the matching rules needed
// to evaluate search filters against them.
//
// Attribute type names are case-insensitive. Values are stored as strings;
// matching is case-insensitive and integer-aware (values that parse as
// integers are compared numerically for ordering, mirroring the
// integerOrderingMatch rule used by attributes such as serialNumber).
package entry

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"filterdir/internal/dn"
)

// Common attribute type names used throughout the system. Attribute names are
// stored normalized to lower case.
const (
	AttrObjectClass = "objectclass"
)

// ErrNoSuchAttribute reports a modification targeting an absent attribute.
var ErrNoSuchAttribute = errors.New("no such attribute")

// Entry is a directory entry: a DN plus attributes. The zero value is an
// empty entry at the root DN.
type Entry struct {
	dn    dn.DN
	attrs map[string][]string // normalized name -> values (original case)
	order []string            // attribute insertion order, for stable output
}

// New creates an entry with the given DN.
func New(d dn.DN) *Entry {
	return &Entry{dn: d, attrs: make(map[string][]string)}
}

// DN returns the entry's distinguished name.
func (e *Entry) DN() dn.DN { return e.dn }

// SetDN replaces the entry's DN (used by modifyDN processing).
func (e *Entry) SetDN(d dn.DN) { e.dn = d }

// normName normalizes an attribute type name.
func normName(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// Put replaces all values of the named attribute.
func (e *Entry) Put(name string, values ...string) *Entry {
	n := normName(name)
	if _, exists := e.attrs[n]; !exists {
		e.order = append(e.order, n)
	}
	cp := make([]string, len(values))
	copy(cp, values)
	e.attrs[n] = cp
	return e
}

// Add appends values to the named attribute, skipping duplicates
// (case-insensitive).
func (e *Entry) Add(name string, values ...string) *Entry {
	n := normName(name)
	if _, exists := e.attrs[n]; !exists {
		e.order = append(e.order, n)
	}
	cur := e.attrs[n]
	for _, v := range values {
		if !containsFold(cur, v) {
			cur = append(cur, v)
		}
	}
	e.attrs[n] = cur
	return e
}

// DeleteValues removes specific values (case-insensitive) from an attribute;
// removing the last value removes the attribute. If values is empty the whole
// attribute is removed. Returns ErrNoSuchAttribute when the attribute is
// absent.
func (e *Entry) DeleteValues(name string, values ...string) error {
	n := normName(name)
	cur, ok := e.attrs[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchAttribute, n)
	}
	if len(values) == 0 {
		e.removeAttr(n)
		return nil
	}
	kept := cur[:0]
	for _, v := range cur {
		if !containsFold(values, v) {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		e.removeAttr(n)
		return nil
	}
	e.attrs[n] = kept
	return nil
}

func (e *Entry) removeAttr(n string) {
	delete(e.attrs, n)
	for i, o := range e.order {
		if o == n {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
}

// Values returns a copy of the values of the named attribute (nil if absent).
func (e *Entry) Values(name string) []string {
	v, ok := e.attrs[normName(name)]
	if !ok {
		return nil
	}
	out := make([]string, len(v))
	copy(out, v)
	return out
}

// First returns the first value of the named attribute, or "" when absent.
func (e *Entry) First(name string) string {
	v := e.attrs[normName(name)]
	if len(v) == 0 {
		return ""
	}
	return v[0]
}

// Has reports whether the entry carries the named attribute.
func (e *Entry) Has(name string) bool {
	_, ok := e.attrs[normName(name)]
	return ok
}

// HasValue reports whether the attribute carries the given value
// (case-insensitive equality match).
func (e *Entry) HasValue(name, value string) bool {
	return containsFold(e.attrs[normName(name)], value)
}

// AttributeNames returns the attribute names in insertion order.
func (e *Entry) AttributeNames() []string {
	out := make([]string, len(e.order))
	copy(out, e.order)
	return out
}

// ObjectClasses returns the entry's objectclass values.
func (e *Entry) ObjectClasses() []string { return e.Values(AttrObjectClass) }

// HasObjectClass reports whether the entry belongs to the named class.
func (e *Entry) HasObjectClass(oc string) bool { return e.HasValue(AttrObjectClass, oc) }

// Clone returns a deep copy of the entry.
func (e *Entry) Clone() *Entry {
	c := &Entry{dn: e.dn, attrs: make(map[string][]string, len(e.attrs))}
	c.order = append(c.order, e.order...)
	for k, v := range e.attrs {
		vv := make([]string, len(v))
		copy(vv, v)
		c.attrs[k] = vv
	}
	return c
}

// Select returns a copy of the entry restricted to the requested attributes.
// The special attribute "*" (or an empty list) selects all user attributes.
func (e *Entry) Select(attrs []string) *Entry {
	if len(attrs) == 0 {
		return e.Clone()
	}
	for _, a := range attrs {
		if a == "*" {
			return e.Clone()
		}
	}
	c := New(e.dn)
	for _, a := range attrs {
		if v, ok := e.attrs[normName(a)]; ok {
			c.Put(a, v...)
		}
	}
	return c
}

// Equal reports deep equality of DN and attributes (value order ignored,
// value comparison case-insensitive).
func (e *Entry) Equal(o *Entry) bool {
	if e == nil || o == nil {
		return e == o
	}
	if !e.dn.Equal(o.dn) || len(e.attrs) != len(o.attrs) {
		return false
	}
	for k, v := range e.attrs {
		ov, ok := o.attrs[k]
		if !ok || len(ov) != len(v) {
			return false
		}
		for _, x := range v {
			if !containsFold(ov, x) {
				return false
			}
		}
	}
	return true
}

// ByteSize estimates the wire size of the entry in bytes: DN plus each
// attribute name and value, with a small per-element framing overhead. Used
// for update-traffic accounting.
func (e *Entry) ByteSize() int {
	size := len(e.dn.String()) + 8
	for k, vals := range e.attrs {
		for _, v := range vals {
			size += len(k) + len(v) + 4
		}
	}
	return size
}

// String renders the entry in a compact LDIF-like single-line form, primarily
// for tests and debugging.
func (e *Entry) String() string {
	var b strings.Builder
	b.WriteString("dn: ")
	b.WriteString(e.dn.String())
	names := e.AttributeNames()
	sort.Strings(names)
	for _, n := range names {
		for _, v := range e.attrs[n] {
			b.WriteString("; ")
			b.WriteString(n)
			b.WriteString(": ")
			b.WriteString(v)
		}
	}
	return b.String()
}

func containsFold(vals []string, v string) bool {
	for _, x := range vals {
		if strings.EqualFold(x, v) {
			return true
		}
	}
	return false
}

// --- Matching rules -------------------------------------------------------

// NormValue normalizes an assertion or attribute value for matching:
// case-folded with surrounding space trimmed and internal runs collapsed.
func NormValue(s string) string {
	return strings.ToLower(strings.Join(strings.Fields(s), " "))
}

// EqualValues applies the caseIgnoreMatch equality rule.
func EqualValues(a, b string) bool {
	return NormValue(a) == NormValue(b)
}

// CompareValues orders two values: numerically when both parse as integers
// (integerOrderingMatch), lexicographically on the normalized form otherwise.
// Returns -1, 0, or 1.
func CompareValues(a, b string) int {
	na, errA := strconv.ParseInt(strings.TrimSpace(a), 10, 64)
	nb, errB := strconv.ParseInt(strings.TrimSpace(b), 10, 64)
	if errA == nil && errB == nil {
		switch {
		case na < nb:
			return -1
		case na > nb:
			return 1
		default:
			return 0
		}
	}
	an, bn := NormValue(a), NormValue(b)
	switch {
	case an < bn:
		return -1
	case an > bn:
		return 1
	default:
		return 0
	}
}

// MatchSubstring applies the caseIgnoreSubstringsMatch rule. The pattern is
// given as initial / any / final components per RFC 2254: initial must prefix
// the value, each any component must occur in order, final must suffix the
// remainder. Empty components are skipped.
func MatchSubstring(value, initial string, any []string, final string) bool {
	v := NormValue(value)
	if initial != "" {
		p := NormValue(initial)
		if !strings.HasPrefix(v, p) {
			return false
		}
		v = v[len(p):]
	}
	for _, a := range any {
		if a == "" {
			continue
		}
		p := NormValue(a)
		i := strings.Index(v, p)
		if i < 0 {
			return false
		}
		v = v[i+len(p):]
	}
	if final != "" {
		p := NormValue(final)
		if !strings.HasSuffix(v, p) {
			return false
		}
	}
	return true
}
