package entry

import (
	"fmt"
	"strings"
)

// ObjectClassDef is a lightweight object class definition: the attributes an
// entry of the class must and may carry. This intentionally models only the
// parts of X.500 schema the paper's system depends on.
type ObjectClassDef struct {
	Name     string
	Super    string // name of superior class, "" for abstract roots
	Must     []string
	May      []string
	IsStruct bool // structural vs auxiliary; informational only
}

// Schema is a registry of object class definitions.
type Schema struct {
	classes map[string]*ObjectClassDef
}

// NewSchema creates an empty schema.
func NewSchema() *Schema {
	return &Schema{classes: make(map[string]*ObjectClassDef)}
}

// Register adds a class definition, replacing any prior definition of the
// same (case-insensitive) name.
func (s *Schema) Register(def ObjectClassDef) {
	d := def
	d.Name = strings.ToLower(def.Name)
	d.Super = strings.ToLower(def.Super)
	s.classes[d.Name] = &d
}

// Lookup finds a class definition by name.
func (s *Schema) Lookup(name string) (*ObjectClassDef, bool) {
	d, ok := s.classes[strings.ToLower(name)]
	return d, ok
}

// requiredAttrs collects Must attributes of the class and its superiors.
func (s *Schema) requiredAttrs(name string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	for cur := strings.ToLower(name); cur != "" && cur != "top"; {
		if seen[cur] {
			return nil, fmt.Errorf("object class cycle at %q", cur)
		}
		seen[cur] = true
		d, ok := s.classes[cur]
		if !ok {
			return nil, fmt.Errorf("unknown object class %q", cur)
		}
		out = append(out, d.Must...)
		cur = d.Super
	}
	return out, nil
}

// Validate checks that an entry declares known object classes and carries all
// attributes required by them.
func (s *Schema) Validate(e *Entry) error {
	ocs := e.ObjectClasses()
	if len(ocs) == 0 {
		return fmt.Errorf("entry %q has no objectclass", e.DN())
	}
	for _, oc := range ocs {
		if strings.EqualFold(oc, "top") {
			continue
		}
		req, err := s.requiredAttrs(oc)
		if err != nil {
			return fmt.Errorf("entry %q: %w", e.DN(), err)
		}
		for _, a := range req {
			if !e.Has(a) {
				return fmt.Errorf("entry %q: class %q requires attribute %q", e.DN(), oc, a)
			}
		}
	}
	return nil
}

// DefaultSchema returns a schema pre-loaded with the object classes the
// paper's enterprise directory uses: organization, country, organizationalUnit,
// inetOrgPerson (RFC 2798) and supporting classes, plus the synthetic
// department and location classes of the workload generator.
func DefaultSchema() *Schema {
	s := NewSchema()
	s.Register(ObjectClassDef{Name: "organization", Must: []string{"o"}, IsStruct: true})
	s.Register(ObjectClassDef{Name: "country", Must: []string{"c"}, IsStruct: true})
	s.Register(ObjectClassDef{Name: "organizationalUnit", Must: []string{"ou"}, IsStruct: true})
	s.Register(ObjectClassDef{Name: "person", Must: []string{"cn", "sn"},
		May: []string{"telephoneNumber", "description"}, IsStruct: true})
	s.Register(ObjectClassDef{Name: "organizationalPerson", Super: "person",
		May: []string{"title", "ou", "l"}, IsStruct: true})
	s.Register(ObjectClassDef{Name: "inetOrgPerson", Super: "organizationalPerson",
		May:      []string{"mail", "uid", "employeeNumber", "departmentNumber", "serialNumber"},
		IsStruct: true})
	s.Register(ObjectClassDef{Name: "department", Must: []string{"dept", "div"},
		May: []string{"description", "manager"}, IsStruct: true})
	s.Register(ObjectClassDef{Name: "location", Must: []string{"location"},
		May: []string{"l", "street", "postalCode"}, IsStruct: true})
	s.Register(ObjectClassDef{Name: "referral", Must: []string{"ref"}, IsStruct: true})
	return s
}
