package persist

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
)

func TestParseJournalRetention(t *testing.T) {
	tests := []struct {
		in      string
		want    JournalRetention
		wantErr bool
	}{
		{in: "", want: JournalRetention{}},
		{in: "bytes=100", want: JournalRetention{MaxBytes: 100}},
		{in: "bytes=64k", want: JournalRetention{MaxBytes: 64 << 10}},
		{in: "bytes=2M", want: JournalRetention{MaxBytes: 2 << 20}},
		{in: "bytes=1g", want: JournalRetention{MaxBytes: 1 << 30}},
		{in: "age=90s", want: JournalRetention{MaxAge: 90 * time.Second}},
		{in: "bytes=64m,age=1h", want: JournalRetention{MaxBytes: 64 << 20, MaxAge: time.Hour}},
		{in: " bytes=1k , age=5m ", want: JournalRetention{MaxBytes: 1 << 10, MaxAge: 5 * time.Minute}},
		{in: "banana", wantErr: true},
		{in: "bytes=-1", wantErr: true},
		{in: "bytes=1x", wantErr: true},
		{in: "age=-5s", wantErr: true},
		{in: "age=fast", wantErr: true},
		{in: "records=7", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := ParseJournalRetention(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("parsed %q as %+v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parse %q: %v", tt.in, err)
			}
			if got != tt.want {
				t.Errorf("parse %q = %+v, want %+v", tt.in, got, tt.want)
			}
			// String renders back into parseable flag syntax.
			back, err := ParseJournalRetention(got.String())
			if err != nil || back != got {
				t.Errorf("round-trip via %q = %+v (%v), want %+v", got.String(), back, err, got)
			}
		})
	}
}

// modifyN commits n changes so the journal has material to accumulate.
func modifyN(t *testing.T, st *dit.Store, n int) {
	t.Helper()
	d := dn.MustParse("cn=p0,o=xyz")
	for i := 0; i < n; i++ {
		if err := st.Modify(d, []dit.Mod{{Op: dit.ModReplace, Attr: "sn", Values: []string{"y"}}}); err != nil {
			t.Fatal(err)
		}
	}
}

func journalSize(t *testing.T, d Dir) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(d.Path, journalName))
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestMaintainRetention drives Dir.Maintain under the policy table and
// checks two things per case: whether the journal was folded into a fresh
// snapshot when (and only when) the policy demands it, and that durable
// state always reopens identical to the live store.
func TestMaintainRetention(t *testing.T) {
	tests := []struct {
		name string
		pol  JournalRetention
		// ageSnapshot backdates the snapshot file before Maintain, to
		// trip (or not) the age bound.
		ageSnapshot time.Duration
		wantFolded  bool
	}{
		{name: "disabled policy never folds", pol: JournalRetention{}, wantFolded: false},
		{name: "size bound under threshold", pol: JournalRetention{MaxBytes: 1 << 20}, wantFolded: false},
		{name: "size bound exceeded", pol: JournalRetention{MaxBytes: 16}, wantFolded: true},
		{name: "age bound, snapshot fresh", pol: JournalRetention{MaxAge: time.Hour}, wantFolded: false},
		{name: "age bound exceeded", pol: JournalRetention{MaxAge: time.Minute}, ageSnapshot: time.Hour, wantFolded: true},
		{name: "either bound suffices", pol: JournalRetention{MaxBytes: 1 << 20, MaxAge: time.Minute}, ageSnapshot: time.Hour, wantFolded: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := Dir{Path: t.TempDir()}
			st := seedStore(t)
			if err := d.Checkpoint(st); err != nil {
				t.Fatal(err)
			}
			if tt.ageSnapshot > 0 {
				old := time.Now().Add(-tt.ageSnapshot)
				if err := os.Chtimes(filepath.Join(d.Path, snapshotName), old, old); err != nil {
					t.Fatal(err)
				}
			}
			wm := st.LastCSN()
			modifyN(t, st, 6)
			wm2, err := d.Maintain(st, wm, tt.pol)
			if err != nil {
				t.Fatal(err)
			}
			if wm2 != st.LastCSN() {
				t.Errorf("watermark = %d, want %d", wm2, st.LastCSN())
			}
			folded := journalSize(t, d) == 0
			if folded != tt.wantFolded {
				t.Errorf("journal folded = %v (size %d), want %v", folded, journalSize(t, d), tt.wantFolded)
			}
			reopened, err := d.Open([]string{"o=xyz"})
			if err != nil {
				t.Fatal(err)
			}
			identical(t, st, reopened)
		})
	}
}

// TestMaintainAgeWithoutSnapshot: a journal that predates any snapshot
// counts as over-age the moment an age bound is armed.
func TestMaintainAgeWithoutSnapshot(t *testing.T) {
	d := Dir{Path: t.TempDir()}
	st := seedStore(t)
	// Journal changes without ever checkpointing a snapshot.
	wm, err := d.AppendChanges(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	modifyN(t, st, 2)
	if _, err := d.Maintain(st, wm, JournalRetention{MaxAge: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if journalSize(t, d) != 0 {
		t.Error("snapshot-less journal not folded under an age bound")
	}
	if _, err := os.Stat(filepath.Join(d.Path, snapshotName)); err != nil {
		t.Errorf("no snapshot written: %v", err)
	}
	reopened, err := d.Open([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	identical(t, st, reopened)
}

// TestMaintainWatermarkMonotone: retention folding moves history from the
// journal into the snapshot without disturbing the append watermark, so a
// caller can keep handing back the returned value.
func TestMaintainWatermarkMonotone(t *testing.T) {
	d := Dir{Path: t.TempDir()}
	st := seedStore(t)
	pol := JournalRetention{MaxBytes: 1}
	wm := dit.CSN(0)
	for round := 0; round < 4; round++ {
		modifyN(t, st, 3)
		w, err := d.Maintain(st, wm, pol)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if w < wm {
			t.Fatalf("round %d: watermark regressed %d -> %d", round, wm, w)
		}
		wm = w
	}
	reopened, err := d.Open([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	identical(t, st, reopened)
}
