package persist

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/ldif"
	"filterdir/internal/query"
	"filterdir/internal/resync"
)

func seedStore(t *testing.T) *dit.Store {
	t.Helper()
	st, err := dit.NewStore([]string{"o=xyz"}, dit.WithIndexes("serialnumber"))
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		e := entry.New(dn.MustParse(fmt.Sprintf("cn=p%d,o=xyz", i)))
		e.Put("objectclass", "person").Put("cn", fmt.Sprintf("p%d", i)).
			Put("sn", "x").Put("serialnumber", fmt.Sprintf("04%02d", i))
		if err := st.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// identical compares two stores entry for entry.
func identical(t *testing.T, a, b *dit.Store) {
	t.Helper()
	all := query.Query{Scope: query.ScopeSubtree}
	if ok, why := resync.Converged(a, b, all); !ok {
		t.Fatalf("stores differ: %s", why)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st := seedStore(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, []string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	identical(t, st, loaded)
}

func TestReplayReconstructsUpdates(t *testing.T) {
	st := seedStore(t)
	baseCSN := st.LastCSN()

	// A mixed update burst.
	if err := st.Modify(dn.MustParse("cn=p1,o=xyz"),
		[]dit.Mod{{Op: dit.ModReplace, Attr: "sn", Values: []string{"changed"}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(dn.MustParse("cn=p2,o=xyz")); err != nil {
		t.Fatal(err)
	}
	e := entry.New(dn.MustParse("cn=new,o=xyz"))
	e.Put("objectclass", "person").Put("cn", "new").Put("sn", "n")
	if err := st.Add(e); err != nil {
		t.Fatal(err)
	}
	if err := st.ModifyDN(dn.MustParse("cn=p3,o=xyz"), dn.RDN{Attr: "cn", Value: "moved"},
		dn.MustParse("o=xyz")); err != nil {
		t.Fatal(err)
	}

	changes, ok := st.ChangesSince(baseCSN)
	if !ok {
		t.Fatal("journal trimmed")
	}
	var journal bytes.Buffer
	if err := AppendJournal(&journal, changes); err != nil {
		t.Fatal(err)
	}

	// A twin starting from the pre-burst snapshot replays to equality.
	twin := seedStore(t)
	applied, err := Replay(&journal, twin, false)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(changes) {
		t.Errorf("applied %d of %d", applied, len(changes))
	}
	identical(t, st, twin)
}

func TestDirOpenCheckpointCycle(t *testing.T) {
	home := Dir{Path: filepath.Join(t.TempDir(), "dir")}
	st := seedStore(t)

	// Checkpoint, then mutate and append the delta to the journal.
	if err := home.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	watermark := st.LastCSN()
	if err := st.Modify(dn.MustParse("cn=p4,o=xyz"),
		[]dit.Mod{{Op: dit.ModReplace, Attr: "sn", Values: []string{"v2"}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(dn.MustParse("cn=p5,o=xyz")); err != nil {
		t.Fatal(err)
	}
	watermark, err := home.AppendChanges(st, watermark)
	if err != nil {
		t.Fatal(err)
	}
	if watermark != st.LastCSN() {
		t.Errorf("watermark = %d, want %d", watermark, st.LastCSN())
	}

	// Recovery: snapshot + journal replay equals the live store.
	recovered, err := home.Open([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	identical(t, st, recovered)

	// A second checkpoint folds the journal away; reopening still matches.
	if err := home.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	recovered2, err := home.Open([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	identical(t, st, recovered2)
}

// TestDirOpenSparseOrphanJournal pins sparse replay: a replica content
// store holds selected entries without their ancestors, so its journal
// contains adds whose parent is absent. Strict Open must reject such a
// journal; OpenSparse must replay it with upsert semantics.
func TestDirOpenSparseOrphanJournal(t *testing.T) {
	home := Dir{Path: filepath.Join(t.TempDir(), "sparse")}
	st, err := dit.NewStore([]string{""})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot is empty; every entry arrives via the journal, orphan-style
	// (parent o=xyz never stored), exactly as live ApplySync upserts them.
	if err := home.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	watermark := st.LastCSN()
	for i := 0; i < 3; i++ {
		e := entry.New(dn.MustParse(fmt.Sprintf("cn=s%d,o=xyz", i)))
		e.Put("objectclass", "person").Put("cn", fmt.Sprintf("s%d", i)).Put("sn", "x")
		if err := st.Upsert(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.RemoveAny(dn.MustParse("cn=s2,o=xyz")); err != nil {
		t.Fatal(err)
	}
	if _, err := home.AppendChanges(st, watermark); err != nil {
		t.Fatal(err)
	}

	if _, err := home.Open([]string{""}); err == nil {
		t.Error("strict Open replayed an orphan add without error")
	}
	recovered, err := home.OpenSparse([]string{""})
	if err != nil {
		t.Fatal(err)
	}
	identical(t, st, recovered)
}

func TestDirOpenFreshPath(t *testing.T) {
	home := Dir{Path: filepath.Join(t.TempDir(), "fresh")}
	st, err := home.Open([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Errorf("fresh store holds %d entries", st.Len())
	}
}

func TestAppendChangesIncremental(t *testing.T) {
	home := Dir{Path: filepath.Join(t.TempDir(), "inc")}
	st := seedStore(t)
	if err := home.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	w := st.LastCSN()
	// Two separate append batches.
	var err error
	if err = st.Modify(dn.MustParse("cn=p1,o=xyz"),
		[]dit.Mod{{Op: dit.ModReplace, Attr: "sn", Values: []string{"a"}}}); err != nil {
		t.Fatal(err)
	}
	if w, err = home.AppendChanges(st, w); err != nil {
		t.Fatal(err)
	}
	if err = st.Modify(dn.MustParse("cn=p1,o=xyz"),
		[]dit.Mod{{Op: dit.ModReplace, Attr: "sn", Values: []string{"b"}}}); err != nil {
		t.Fatal(err)
	}
	if w, err = home.AppendChanges(st, w); err != nil {
		t.Fatal(err)
	}
	// Idempotent no-op append.
	if _, err = home.AppendChanges(st, w); err != nil {
		t.Fatal(err)
	}
	recovered, err := home.Open([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	identical(t, st, recovered)
}

// tearTail truncates serialized journal bytes inside the final change
// record — the shape a crash mid-append leaves on disk — by cutting right
// after the last record's "changetype" keyword.
func tearTail(t *testing.T, journal []byte) []byte {
	t.Helper()
	idx := bytes.LastIndex(journal, []byte("changetype"))
	if idx < 0 {
		t.Fatal("journal holds no change records to tear")
	}
	return journal[:idx+len("changety")]
}

// burst applies one change of each type and returns their journal records.
func burst(t *testing.T, st *dit.Store) []dit.Change {
	t.Helper()
	base := st.LastCSN()
	if err := st.Modify(dn.MustParse("cn=p1,o=xyz"),
		[]dit.Mod{{Op: dit.ModReplace, Attr: "sn", Values: []string{"crashed"}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(dn.MustParse("cn=p2,o=xyz")); err != nil {
		t.Fatal(err)
	}
	e := entry.New(dn.MustParse("cn=late,o=xyz"))
	e.Put("objectclass", "person").Put("cn", "late").Put("sn", "l")
	if err := st.Add(e); err != nil {
		t.Fatal(err)
	}
	changes, ok := st.ChangesSince(base)
	if !ok {
		t.Fatal("journal trimmed")
	}
	return changes
}

func TestReplayRecoverTornFinalRecord(t *testing.T) {
	st := seedStore(t)
	changes := burst(t, st)
	var journal bytes.Buffer
	if err := AppendJournal(&journal, changes); err != nil {
		t.Fatal(err)
	}
	torn := tearTail(t, journal.Bytes())

	// Recovery replays everything before the torn record and reports it.
	twin := seedStore(t)
	applied, wasTorn, err := ReplayRecover(bytes.NewReader(torn), twin, false)
	if err != nil {
		t.Fatal(err)
	}
	if !wasTorn {
		t.Error("truncated final record not reported as torn")
	}
	if applied != len(changes)-1 {
		t.Errorf("applied %d records, want %d (all but the torn tail)", applied, len(changes)-1)
	}
	// The torn record's change (the final add) must not have landed.
	if _, ok := twin.Get(dn.MustParse("cn=late,o=xyz")); ok {
		t.Error("torn add record was applied")
	}

	// Strict Replay of the same bytes must fail: only crash recovery may
	// drop records.
	if _, err := Replay(bytes.NewReader(torn), seedStore(t), false); err == nil {
		t.Error("strict replay accepted a torn journal")
	}
}

func TestReplayRecoverMidStreamCorruption(t *testing.T) {
	st := seedStore(t)
	changes := burst(t, st)
	var journal bytes.Buffer
	if err := AppendJournal(&journal, changes[:2]); err != nil {
		t.Fatal(err)
	}
	corrupt := append(tearTail(t, journal.Bytes()), "\n\n"...)
	var tail bytes.Buffer
	if err := AppendJournal(&tail, changes[2:]); err != nil {
		t.Fatal(err)
	}
	corrupt = append(corrupt, tail.Bytes()...)

	// A damaged record followed by a complete one is corruption, not a
	// crash tail: recovery must refuse rather than silently skip it.
	if _, _, err := ReplayRecover(bytes.NewReader(corrupt), seedStore(t), false); err == nil {
		t.Error("mid-stream corruption not rejected")
	}
}

func TestDirOpenRepairsTornJournal(t *testing.T) {
	home := Dir{Path: filepath.Join(t.TempDir(), "torn")}
	st := seedStore(t)
	if err := home.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	watermark := st.LastCSN()
	burst(t, st)
	if _, err := home.AppendChanges(st, watermark); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: truncate the journal file inside its
	// final record.
	jPath := filepath.Join(home.Path, "journal.ldif")
	raw, err := os.ReadFile(jPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jPath, tearTail(t, raw), 0o644); err != nil {
		t.Fatal(err)
	}

	recovered, err := home.Open([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := recovered.Get(dn.MustParse("cn=late,o=xyz")); ok {
		t.Error("torn final record was applied during recovery")
	}
	if _, ok := recovered.Get(dn.MustParse("cn=p2,o=xyz")); ok {
		t.Error("complete delete record before the tear was not applied")
	}

	// Open must also have repaired the file: the journal now parses
	// strictly, and appends continue cleanly after the repair.
	f, err := os.Open(jPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ldif.ReadChanges(bufio.NewReader(f))
	f.Close()
	if err != nil {
		t.Fatalf("repaired journal does not parse strictly: %v", err)
	}
	if len(recs) != 2 {
		t.Errorf("repaired journal holds %d records, want 2", len(recs))
	}
	w2, err := home.AppendChanges(recovered, recovered.LastCSN())
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.Delete(dn.MustParse("cn=p3,o=xyz")); err != nil {
		t.Fatal(err)
	}
	if _, err := home.AppendChanges(recovered, w2); err != nil {
		t.Fatal(err)
	}
	reopened, err := home.Open([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	identical(t, recovered, reopened)
}

func TestReplaySkipMissing(t *testing.T) {
	st := seedStore(t)
	base := st.LastCSN()
	if err := st.Delete(dn.MustParse("cn=p1,o=xyz")); err != nil {
		t.Fatal(err)
	}
	changes, _ := st.ChangesSince(base)
	var journal bytes.Buffer
	if err := AppendJournal(&journal, changes); err != nil {
		t.Fatal(err)
	}
	// Replaying the delete twice: strict mode errors, skip mode tolerates.
	twin := seedStore(t)
	if _, err := Replay(bytes.NewReader(journal.Bytes()), twin, false); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(bytes.NewReader(journal.Bytes()), twin, false); err == nil {
		t.Error("strict replay of a stale delete must fail")
	}
	if n, err := Replay(bytes.NewReader(journal.Bytes()), twin, true); err != nil || n != 0 {
		t.Errorf("skip-missing replay: n=%d err=%v", n, err)
	}
}
