// Package persist makes a DIT durable with plain interchange formats: a
// full LDIF snapshot plus an appendable journal of LDIF change records.
// Recovery loads the snapshot and replays the journal, so a server restart
// (or a cold replica) reconstructs the exact directory state. Checkpoints
// are written atomically (temp file + rename).
package persist

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"filterdir/internal/dit"
	"filterdir/internal/entry"
	"filterdir/internal/ldif"
)

// Save writes a full LDIF snapshot of the store, parents before children so
// Load can re-add entries in order.
func Save(w io.Writer, st *dit.Store) error {
	entries := st.All()
	sort.Slice(entries, func(i, j int) bool {
		if d := entries[i].DN().Depth() - entries[j].DN().Depth(); d != 0 {
			return d < 0
		}
		return entries[i].DN().Norm() < entries[j].DN().Norm()
	})
	return ldif.Write(w, entries...)
}

// Load builds a store from an LDIF snapshot.
func Load(r io.Reader, suffixes []string, opts ...dit.Option) (*dit.Store, error) {
	st, err := dit.NewStore(suffixes, opts...)
	if err != nil {
		return nil, err
	}
	entries, err := ldif.Read(r)
	if err != nil {
		return nil, fmt.Errorf("read snapshot: %w", err)
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].DN().Depth() < entries[j].DN().Depth()
	})
	if err := st.Load(entries); err != nil {
		return nil, fmt.Errorf("load snapshot: %w", err)
	}
	return st, nil
}

// commitMarker prefixes the comment line terminating each durable batch.
// LDIF readers skip comment lines, so marked journals stay plain LDIF;
// recovery uses the last marker as the committed high-water mark.
const commitMarker = "# commit "

// AppendJournal writes journal changes as LDIF change records followed by a
// commit marker: one call is one durable batch, and crash recovery replays
// a batch all-or-none (records after the last marker are discarded).
func AppendJournal(w io.Writer, changes []dit.Change) error {
	if len(changes) == 0 {
		return nil
	}
	if err := ldif.WriteChanges(w, changes...); err != nil {
		return err
	}
	// Terminate the batch: marker, then a blank separator so the stream
	// stays parseable.
	_, err := fmt.Fprintf(w, "%s%d\n\n", commitMarker, changes[len(changes)-1].CSN)
	return err
}

// Replay applies LDIF change records to a store, reconstructing the state
// they describe. Records for entries that no longer exist (e.g. replayed
// over a newer snapshot) surface as errors unless skipMissing is set.
func Replay(r io.Reader, st *dit.Store, skipMissing bool) (applied int, err error) {
	records, err := ldif.ReadChanges(r)
	if err != nil {
		return 0, fmt.Errorf("parse journal: %w", err)
	}
	return applyRecords(st, records, skipMissing, false)
}

// ReplayRecover is Replay for crash recovery: a torn final record (the
// shape an interrupted append leaves behind) is dropped and reported
// instead of failing the whole replay; state is reconstructed up to the
// last complete record. Corruption before the final record is still an
// error.
func ReplayRecover(r io.Reader, st *dit.Store, skipMissing bool) (applied int, torn bool, err error) {
	records, torn, err := ldif.ReadChangesTail(r)
	if err != nil {
		return 0, torn, fmt.Errorf("parse journal: %w", err)
	}
	applied, err = applyRecords(st, records, skipMissing, false)
	return applied, torn, err
}

func applyRecords(st *dit.Store, records []ldif.ChangeRecord, skipMissing, sparse bool) (applied int, err error) {
	for _, rec := range records {
		if err := applyRecord(st, rec, sparse); err != nil {
			if skipMissing && (errors.Is(err, dit.ErrNoSuchObject) || errors.Is(err, dit.ErrAlreadyExists)) {
				continue
			}
			return applied, fmt.Errorf("replay %s %q: %w", rec.Type, rec.DN.String(), err)
		}
		applied++
	}
	return applied, nil
}

func applyRecord(st *dit.Store, rec ldif.ChangeRecord, sparse bool) error {
	switch rec.Type {
	case dit.ChangeAdd:
		e := entry.New(rec.DN)
		for name, vals := range rec.Attrs {
			e.Put(name, vals...)
		}
		if sparse {
			return st.Upsert(e)
		}
		return st.Add(e)
	case dit.ChangeDelete:
		if sparse {
			return st.RemoveAny(rec.DN)
		}
		return st.Delete(rec.DN)
	case dit.ChangeModify:
		return st.Modify(rec.DN, rec.Mods)
	case dit.ChangeModifyDN:
		leaf, ok := rec.NewDN.Leaf()
		if !ok {
			return fmt.Errorf("modrdn record lacks a leaf RDN")
		}
		superior, _ := rec.NewDN.Parent()
		return st.ModifyDN(rec.DN, leaf, superior)
	default:
		return fmt.Errorf("unknown change type %v", rec.Type)
	}
}

// Dir is a durable home for one directory: snapshot.ldif plus journal.ldif
// inside a filesystem directory.
type Dir struct {
	Path string
}

const (
	snapshotName = "snapshot.ldif"
	journalName  = "journal.ldif"
)

// Open loads the directory state from path (creating the path if needed):
// the snapshot is loaded if present and the journal replayed on top. A
// torn final journal record — a crash mid-append — is recovered from: the
// state up to the last complete record is reconstructed and the journal
// file repaired so later appends stay parseable. The returned CSN
// watermark tells the caller where its in-memory journal starts relative
// to durable state (always 0 for a fresh store, since loading does not
// journal).
func (d Dir) Open(suffixes []string, opts ...dit.Option) (*dit.Store, error) {
	return d.open(suffixes, false, opts)
}

// OpenSparse is Open for sparse replica content: stores that do not
// maintain tree completeness (a filter replica holds matching entries
// without their ancestors). Journal adds are applied as upserts and
// deletes ignore children — exactly how live synchronization applies
// updates (dit.Store.Upsert / RemoveAny) — so an add whose parent lies
// outside the selection replays cleanly.
func (d Dir) OpenSparse(suffixes []string, opts ...dit.Option) (*dit.Store, error) {
	return d.open(suffixes, true, opts)
}

func (d Dir) open(suffixes []string, sparse bool, opts []dit.Option) (*dit.Store, error) {
	if err := os.MkdirAll(d.Path, 0o755); err != nil {
		return nil, err
	}
	snapPath := filepath.Join(d.Path, snapshotName)
	var st *dit.Store
	if f, err := os.Open(snapPath); err == nil {
		defer f.Close()
		st, err = Load(bufio.NewReader(f), suffixes, opts...)
		if err != nil {
			return nil, err
		}
	} else if errors.Is(err, os.ErrNotExist) {
		st, err = dit.NewStore(suffixes, opts...)
		if err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	jPath := filepath.Join(d.Path, journalName)
	if raw, err := os.ReadFile(jPath); err == nil {
		records, torn, rerr := readCommitted(raw)
		if rerr != nil {
			return nil, fmt.Errorf("parse journal: %w", rerr)
		}
		if _, err := applyRecords(st, records, false, sparse); err != nil {
			return nil, err
		}
		if torn {
			if err := rewriteJournal(jPath, records); err != nil {
				return nil, fmt.Errorf("repair torn journal: %w", err)
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	return st, nil
}

// readCommitted parses journal bytes up to the batch-commit high-water
// mark: everything after the last commit marker — an interrupted batch
// append — is discarded, so a batch replays all-or-none. Journals written
// before batch markers existed (no marker anywhere) fall back to
// record-level torn-tail recovery.
func readCommitted(raw []byte) ([]ldif.ChangeRecord, bool, error) {
	prefix, torn, found := committedPrefix(raw)
	if !found {
		return ldif.ReadChangesTail(bytes.NewReader(raw))
	}
	recs, err := ldif.ReadChanges(bytes.NewReader(prefix))
	if err != nil {
		// The committed prefix should always parse (it was fsynced before
		// its marker); treat residual damage like a legacy torn tail.
		return ldif.ReadChangesTail(bytes.NewReader(prefix))
	}
	return recs, torn, nil
}

// committedPrefix splits raw journal bytes at the end of the last commit
// marker line. torn reports whether non-blank bytes (an unfinished batch)
// follow the marker; found is false when the journal holds no marker.
func committedPrefix(raw []byte) (prefix []byte, torn, found bool) {
	marker := []byte(commitMarker)
	i := bytes.LastIndex(raw, append([]byte("\n"), marker...))
	switch {
	case i >= 0:
		i++ // first byte of the marker line
	case bytes.HasPrefix(raw, marker):
		i = 0
	default:
		return nil, false, false
	}
	end := bytes.IndexByte(raw[i:], '\n')
	if end < 0 {
		// Marker line itself torn mid-write: the previous marker (if any)
		// is the real high-water mark.
		return committedPrefix(raw[:i])
	}
	cut := i + end + 1
	tail := bytes.TrimSpace(raw[cut:])
	return raw[:cut], len(tail) > 0, true
}

// rewriteJournal atomically replaces the journal with only its complete
// records, dropping a torn tail so subsequent appends cannot merge into
// the partial record.
func rewriteJournal(path string, records []ldif.ChangeRecord) error {
	changes := make([]dit.Change, 0, len(records))
	for _, rec := range records {
		c, err := rec.AsChange()
		if err != nil {
			return err
		}
		changes = append(changes, c)
	}
	return WriteAtomic(path, func(w io.Writer) error {
		return AppendJournal(w, changes)
	})
}

// WriteAtomic writes a file via temp file + fsync + rename in the target's
// directory, so readers (and crash recovery) never observe a partial file.
func WriteAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+"-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Checkpoint atomically writes a fresh snapshot of the store and truncates
// the journal: the snapshot now embodies every applied change.
func (d Dir) Checkpoint(st *dit.Store) error {
	err := WriteAtomic(filepath.Join(d.Path, snapshotName), func(w io.Writer) error {
		return Save(w, st)
	})
	if err != nil {
		return err
	}
	// The journal's changes are folded into the snapshot.
	return os.WriteFile(filepath.Join(d.Path, journalName), nil, 0o644)
}

// JournalRetention bounds how much change history accumulates in the
// on-disk journal before it is folded into a fresh snapshot. A zero value
// disables the corresponding bound; the zero policy never forces a
// checkpoint (journals then grow until Checkpoint is called explicitly,
// the pre-policy behaviour).
type JournalRetention struct {
	// MaxBytes checkpoints once journal.ldif exceeds this size.
	MaxBytes int64
	// MaxAge checkpoints once the journal has been accumulating for this
	// long — measured as time since the last snapshot checkpoint. A
	// non-empty journal with no snapshot at all counts as over-age.
	MaxAge time.Duration
}

// Enabled reports whether any bound is armed.
func (p JournalRetention) Enabled() bool { return p.MaxBytes > 0 || p.MaxAge > 0 }

// String renders the policy in the flag syntax ParseJournalRetention reads.
func (p JournalRetention) String() string {
	switch {
	case p.MaxBytes > 0 && p.MaxAge > 0:
		return fmt.Sprintf("bytes=%d,age=%s", p.MaxBytes, p.MaxAge)
	case p.MaxBytes > 0:
		return fmt.Sprintf("bytes=%d", p.MaxBytes)
	case p.MaxAge > 0:
		return fmt.Sprintf("age=%s", p.MaxAge)
	default:
		return ""
	}
}

// ParseJournalRetention reads the -journal-retention flag syntax: a
// comma-separated list of "bytes=<n>[k|m|g]" and "age=<duration>" terms,
// e.g. "bytes=64m,age=1h". The empty string is the disabled policy.
func ParseJournalRetention(s string) (JournalRetention, error) {
	var p JournalRetention
	if s == "" {
		return p, nil
	}
	for _, term := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok {
			return p, fmt.Errorf("journal retention: term %q is not key=value", term)
		}
		switch key {
		case "bytes":
			n, err := parseByteSize(val)
			if err != nil {
				return p, fmt.Errorf("journal retention: %w", err)
			}
			p.MaxBytes = n
		case "age":
			d, err := time.ParseDuration(val)
			if err != nil {
				return p, fmt.Errorf("journal retention: age %q: %w", val, err)
			}
			if d < 0 {
				return p, fmt.Errorf("journal retention: age %q is negative", val)
			}
			p.MaxAge = d
		default:
			return p, fmt.Errorf("journal retention: unknown term %q (want bytes= or age=)", key)
		}
	}
	return p, nil
}

// parseByteSize reads a non-negative integer with an optional k/m/g
// (binary) suffix.
func parseByteSize(s string) (int64, error) {
	mult := int64(1)
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'k', 'K':
			mult, s = 1<<10, s[:n-1]
		case 'm', 'M':
			mult, s = 1<<20, s[:n-1]
		case 'g', 'G':
			mult, s = 1<<30, s[:n-1]
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n * mult, nil
}

// OverRetention reports whether the on-disk journal currently exceeds the
// policy, meaning the next checkpoint opportunity should fold it into a
// fresh snapshot.
func (d Dir) OverRetention(pol JournalRetention) (bool, error) {
	return d.retentionExceeded(pol, time.Now())
}

// retentionExceeded reports whether the on-disk journal is over the
// policy's bounds at instant now. An absent or empty journal is never
// over; with an age bound armed, a journal that predates any snapshot is.
func (d Dir) retentionExceeded(pol JournalRetention, now time.Time) (bool, error) {
	ji, err := os.Stat(filepath.Join(d.Path, journalName))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if ji.Size() == 0 {
		return false, nil
	}
	if pol.MaxBytes > 0 && ji.Size() > pol.MaxBytes {
		return true, nil
	}
	if pol.MaxAge > 0 {
		si, err := os.Stat(filepath.Join(d.Path, snapshotName))
		if errors.Is(err, os.ErrNotExist) {
			return true, nil // never checkpointed: the journal is all we have
		}
		if err != nil {
			return false, err
		}
		if now.Sub(si.ModTime()) > pol.MaxAge {
			return true, nil
		}
	}
	return false, nil
}

// Maintain appends changes since the given CSN like AppendChanges, then
// enforces the retention policy: a journal over its size or age bound is
// folded into a fresh snapshot (Checkpoint), emptying it. The returned
// watermark advances past the appended changes either way — retention
// only moves history from the journal file into the snapshot, it never
// discards durable state.
func (d Dir) Maintain(st *dit.Store, after dit.CSN, pol JournalRetention) (dit.CSN, error) {
	w, err := d.AppendChanges(st, after)
	if err != nil {
		return after, err
	}
	if !pol.Enabled() {
		return w, nil
	}
	over, err := d.retentionExceeded(pol, time.Now())
	if err != nil || !over {
		return w, err
	}
	if err := d.Checkpoint(st); err != nil {
		return w, fmt.Errorf("retention checkpoint: %w", err)
	}
	return w, nil
}

// AppendChanges durably appends journal changes since the given CSN,
// returning the new watermark. Call it periodically (or after each batch of
// updates) with the last returned watermark.
func (d Dir) AppendChanges(st *dit.Store, after dit.CSN) (dit.CSN, error) {
	changes, ok := st.ChangesSince(after)
	if !ok {
		return after, fmt.Errorf("journal history since CSN %d no longer available; checkpoint instead", after)
	}
	if len(changes) == 0 {
		return after, nil
	}
	f, err := os.OpenFile(filepath.Join(d.Path, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return after, err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := AppendJournal(bw, changes); err != nil {
		return after, err
	}
	if err := bw.Flush(); err != nil {
		return after, err
	}
	if err := f.Sync(); err != nil {
		return after, err
	}
	return changes[len(changes)-1].CSN, nil
}
