package query

import (
	"testing"

	"filterdir/internal/dn"
)

func TestNewAndFilterDefault(t *testing.T) {
	q, err := New("o=xyz", ScopeSubtree, "")
	if err != nil {
		t.Fatal(err)
	}
	if q.FilterString() != "(objectclass=*)" {
		t.Errorf("default filter = %s", q.FilterString())
	}
	if _, err := New("=bad", ScopeSubtree, ""); err == nil {
		t.Error("bad base accepted")
	}
	if _, err := New("o=xyz", ScopeSubtree, "((("); err == nil {
		t.Error("bad filter accepted")
	}
}

func TestParseScope(t *testing.T) {
	cases := map[string]Scope{
		"base": ScopeBase, "one": ScopeSingleLevel, "onelevel": ScopeSingleLevel,
		"sub": ScopeSubtree, "SUBTREE": ScopeSubtree,
	}
	for in, want := range cases {
		got, err := ParseScope(in)
		if err != nil || got != want {
			t.Errorf("ParseScope(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScope("galaxy"); err == nil {
		t.Error("bad scope accepted")
	}
	if ScopeBase.String() != "base" || ScopeSubtree.String() != "sub" || ScopeSingleLevel.String() != "one" {
		t.Error("scope String() mismatch")
	}
}

func TestInScope(t *testing.T) {
	base := "c=us,o=xyz"
	child := dn.MustParse("cn=a,c=us,o=xyz")
	grandchild := dn.MustParse("cn=b,ou=r,c=us,o=xyz")
	self := dn.MustParse(base)
	other := dn.MustParse("c=in,o=xyz")

	tests := []struct {
		scope  Scope
		target dn.DN
		want   bool
	}{
		{ScopeBase, self, true},
		{ScopeBase, child, false},
		{ScopeSingleLevel, child, true},
		{ScopeSingleLevel, self, false},
		{ScopeSingleLevel, grandchild, false},
		{ScopeSubtree, self, true},
		{ScopeSubtree, child, true},
		{ScopeSubtree, grandchild, true},
		{ScopeSubtree, other, false},
	}
	for _, tt := range tests {
		q := MustNew(base, tt.scope, "")
		if got := q.InScope(tt.target); got != tt.want {
			t.Errorf("scope %v target %s: InScope = %v, want %v", tt.scope, tt.target, got, tt.want)
		}
	}
}

func TestAttrsSubsetOf(t *testing.T) {
	all := MustNew("", ScopeSubtree, "")
	star := MustNew("", ScopeSubtree, "", "*")
	some := MustNew("", ScopeSubtree, "", "cn", "mail")
	fewer := MustNew("", ScopeSubtree, "", "CN")
	other := MustNew("", ScopeSubtree, "", "sn")

	if !some.AttrsSubsetOf(all) || !some.AttrsSubsetOf(star) {
		t.Error("specific attrs must be subset of all-attrs")
	}
	if all.AttrsSubsetOf(some) {
		t.Error("all-attrs is not a subset of specific attrs")
	}
	if !fewer.AttrsSubsetOf(some) {
		t.Error("case-insensitive attr subset failed")
	}
	if other.AttrsSubsetOf(some) {
		t.Error("disjoint attrs claimed subset")
	}
	if !all.WantsAllAttrs() || !star.WantsAllAttrs() || some.WantsAllAttrs() {
		t.Error("WantsAllAttrs wrong")
	}
}

func TestNormalizeAndKey(t *testing.T) {
	a := MustNew("C=US,o=xyz", ScopeSubtree, "(&(b=2)(a=1))", "Mail", "CN")
	b := MustNew("c=us,O=XYZ", ScopeSubtree, "(&(a=1)(b=2))", "cn", "mail")
	if a.Key() != b.Key() {
		t.Errorf("equivalent queries have different keys:\n%q\n%q", a.Key(), b.Key())
	}
	c := MustNew("c=us,o=xyz", ScopeSingleLevel, "(&(a=1)(b=2))", "cn", "mail")
	if a.Key() == c.Key() {
		t.Error("different scopes share a key")
	}
}

func TestTemplate(t *testing.T) {
	q := MustNew("", ScopeSubtree, "(&(dept=2406)(div=sw))")
	if q.Template() != "(&(dept=_)(div=_))" {
		t.Errorf("Template = %s", q.Template())
	}
	empty := Query{}
	if empty.Template() != "(objectclass=*)" {
		t.Errorf("nil-filter template = %s", empty.Template())
	}
	if empty.FilterString() != "(objectclass=*)" {
		t.Errorf("nil-filter string = %s", empty.FilterString())
	}
}

func TestStringForm(t *testing.T) {
	q := MustNew("o=xyz", ScopeSubtree, "(sn=Doe)", "cn")
	s := q.String()
	for _, want := range []string{"o=xyz", "sub", "(sn=Doe)", "cn"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
