// Package query defines the LDAP search request quadruple (base, scope,
// filter, attributes) — the paper's unit of replication — together with its
// string forms and the region predicate shared by the DIT, the replicas and
// the containment algorithms.
package query

import (
	"fmt"
	"sort"
	"strings"

	"filterdir/internal/dn"
	"filterdir/internal/filter"
)

// Scope is the LDAP search scope. The paper's QC algorithm relies on the
// integer ordering BASE < SingleLevel < Subtree.
type Scope int

// Search scopes.
const (
	ScopeBase Scope = iota
	ScopeSingleLevel
	ScopeSubtree
)

func (s Scope) String() string {
	switch s {
	case ScopeBase:
		return "base"
	case ScopeSingleLevel:
		return "one"
	case ScopeSubtree:
		return "sub"
	default:
		return fmt.Sprintf("scope(%d)", int(s))
	}
}

// ParseScope parses the textual scope names used in URLs and config.
func ParseScope(s string) (Scope, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "base":
		return ScopeBase, nil
	case "one", "onelevel", "single", "singlelevel":
		return ScopeSingleLevel, nil
	case "sub", "subtree":
		return ScopeSubtree, nil
	default:
		return 0, fmt.Errorf("unknown scope %q", s)
	}
}

// Query is an LDAP search request: the semantic information associated with
// a query per Section 2.2 of the paper. A nil Filter means (objectclass=*).
// An empty Attrs (or one containing "*") selects all user attributes.
type Query struct {
	Base   dn.DN
	Scope  Scope
	Filter *filter.Node
	Attrs  []string
}

// New builds a query, parsing the filter string. An empty filter string
// means (objectclass=*).
func New(base string, scope Scope, filterStr string, attrs ...string) (Query, error) {
	b, err := dn.Parse(base)
	if err != nil {
		return Query{}, fmt.Errorf("query base: %w", err)
	}
	var f *filter.Node
	if strings.TrimSpace(filterStr) != "" {
		f, err = filter.Parse(filterStr)
		if err != nil {
			return Query{}, fmt.Errorf("query filter: %w", err)
		}
	} else {
		f = filter.NewPresent("objectclass")
	}
	return Query{Base: b, Scope: scope, Filter: f, Attrs: attrs}, nil
}

// MustNew is New that panics on error; intended for tests and constants.
func MustNew(base string, scope Scope, filterStr string, attrs ...string) Query {
	q, err := New(base, scope, filterStr, attrs...)
	if err != nil {
		panic(err)
	}
	return q
}

// FilterString renders the filter, defaulting to (objectclass=*).
func (q Query) FilterString() string {
	if q.Filter == nil {
		return "(objectclass=*)"
	}
	return q.Filter.String()
}

// String renders the query in an LDAP-URL-like form for logs and metadata.
func (q Query) String() string {
	attrs := "*"
	if len(q.Attrs) > 0 {
		attrs = strings.Join(q.Attrs, ",")
	}
	return fmt.Sprintf("base=%q scope=%s filter=%s attrs=%s",
		q.Base.String(), q.Scope, q.FilterString(), attrs)
}

// Template returns the filter's template string (Section 3.4.2); queries
// generated from the same application prototype share a template.
func (q Query) Template() string {
	if q.Filter == nil {
		return "(objectclass=*)"
	}
	return q.Filter.Template()
}

// InScope reports whether target lies in the region defined by the query's
// base and scope.
func (q Query) InScope(target dn.DN) bool {
	switch q.Scope {
	case ScopeBase:
		return q.Base.Equal(target)
	case ScopeSingleLevel:
		return q.Base.IsParent(target)
	case ScopeSubtree:
		return q.Base.IsSuffix(target)
	default:
		return false
	}
}

// WantsAllAttrs reports whether the query selects every user attribute.
func (q Query) WantsAllAttrs() bool {
	if len(q.Attrs) == 0 {
		return true
	}
	for _, a := range q.Attrs {
		if a == "*" {
			return true
		}
	}
	return false
}

// AttrsSubsetOf reports whether q's requested attributes are a subset of
// o's (condition (ii) of semantic query containment).
func (q Query) AttrsSubsetOf(o Query) bool {
	if o.WantsAllAttrs() {
		return true
	}
	if q.WantsAllAttrs() {
		return false
	}
	set := make(map[string]bool, len(o.Attrs))
	for _, a := range o.Attrs {
		set[strings.ToLower(a)] = true
	}
	for _, a := range q.Attrs {
		if !set[strings.ToLower(a)] {
			return false
		}
	}
	return true
}

// Normalize returns the query with a normalized filter and sorted,
// lower-cased attribute list; used for stable metadata keys.
func (q Query) Normalize() Query {
	out := q
	if q.Filter != nil {
		out.Filter = q.Filter.Normalize()
	}
	if len(q.Attrs) > 0 {
		attrs := make([]string, len(q.Attrs))
		for i, a := range q.Attrs {
			attrs[i] = strings.ToLower(a)
		}
		sort.Strings(attrs)
		out.Attrs = attrs
	}
	return out
}

// Key returns a canonical string identifying the (normalized) query; two
// queries with the same Key are identical requests.
func (q Query) Key() string {
	n := q.Normalize()
	return n.Base.Norm() + "\x00" + n.Scope.String() + "\x00" + n.FilterString() + "\x00" + strings.Join(n.Attrs, ",")
}
