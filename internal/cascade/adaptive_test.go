package cascade

import (
	"strings"
	"sync"
	"testing"
	"time"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/supervisor"
)

// countPrefix returns how many entries in the store carry a serialNumber
// with the given prefix.
func countPrefix(st *dit.Store, prefix string) int {
	n := 0
	for _, e := range st.All() {
		if strings.HasPrefix(e.First("serialnumber"), prefix) {
			n++
		}
	}
	return n
}

// TestAdoptRetireLifecycle walks the control plane's two actions end to
// end: AdoptSpec widens admission and pulls the widened content, a
// duplicate adopt is a no-op, base specs refuse to retire, and RetireSpec
// drops exactly the retired content while narrowing admission back.
func TestAdoptRetireLifecycle(t *testing.T) {
	h := newHarness(t)
	tier, _ := startTier(t, h.tierConfig(t), "ldap://"+h.srv.Addr())
	waitSynced(t, tier.Supervisors()[0])

	outside := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=05*)")
	if err := tier.Admit(outside); err == nil {
		t.Fatal("tier admitted (serialnumber=05*) before adoption")
	}
	gen0, _ := tier.FilterGeneration()

	sup, err := tier.AdoptSpec(outside)
	if err != nil {
		t.Fatalf("AdoptSpec: %v", err)
	}
	if sup == nil {
		t.Fatal("AdoptSpec returned no supervisor for a new spec")
	}
	waitSynced(t, sup)
	waitConverged(t, h.store, tier.Replica().Store(), outside, 10*time.Second)

	// Admission widens immediately; the generation bump follows the sync.
	if err := tier.Admit(query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=0501)")); err != nil {
		t.Errorf("narrower spec rejected after adoption: %v", err)
	}
	waitCounter(t, "filter generation", 10*time.Second, func() int64 {
		gen, _ := tier.FilterGeneration()
		return int64(gen)
	}, int64(gen0)+1)

	// Duplicate adopt (same normalized key, different spelling) is a no-op.
	dup, err := tier.AdoptSpec(query.MustNew("o=xyz", query.ScopeSubtree, "(serialNumber=05*)"))
	if err != nil || dup != nil {
		t.Fatalf("duplicate AdoptSpec = (%v, %v), want (nil, nil)", dup, err)
	}
	if got := len(tier.Specs()); got != 2 {
		t.Fatalf("specs after duplicate adopt = %d, want 2", got)
	}

	if _, err := tier.RetireSpec(h.tierSpec); err == nil {
		t.Fatal("RetireSpec allowed retiring a configured base spec")
	}

	if _, err := tier.RetireSpec(outside); err != nil {
		t.Fatalf("RetireSpec: %v", err)
	}
	if err := tier.Admit(outside); err == nil {
		t.Error("tier still admits (serialnumber=05*) after retirement")
	}
	if got := countPrefix(tier.Replica().Store(), "05"); got != 0 {
		t.Errorf("retired content still stored: %d 05-entries", got)
	}
	if got := countPrefix(tier.Replica().Store(), "04"); got == 0 {
		t.Error("retirement dropped base-spec content")
	}
	waitConverged(t, h.store, tier.Replica().Store(), h.tierSpec, 10*time.Second)
	if _, err := tier.RetireSpec(outside); err == nil {
		t.Error("second RetireSpec of the same spec succeeded")
	}
}

// TestFiltersChangedNotificationMigratesLeaf: a rejected leaf parked on the
// fallback master migrates back within seconds of AdoptSpec, woken by the
// tier's filters-changed notification — its timer path is armed at an hour,
// so only the watch can explain the migration.
func TestFiltersChangedNotificationMigratesLeaf(t *testing.T) {
	h := newHarness(t)
	tier, tierSrv := startTier(t, h.tierConfig(t), "ldap://"+h.srv.Addr())
	waitSynced(t, tier.Supervisors()[0])

	outside := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=05*)")
	rep, err := replica.NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	sup, err := supervisor.New(supervisor.Config{
		Master:             tierSrv.Addr(),
		Fallback:           h.srv.Addr(),
		RetryUpstreamAfter: time.Hour, // timer path out of reach: the watch must do it
		WatchFilters:       true,
		Spec:               outside,
		PollInterval:       3 * time.Millisecond,
		BackoffBase:        time.Millisecond,
		BackoffMax:         20 * time.Millisecond,
		DialTimeout:        2 * time.Second,
		Seed:               5,
		Logf:               t.Logf,
	}, rep)
	if err != nil {
		t.Fatal(err)
	}
	sup.Start()
	t.Cleanup(func() { _ = sup.Stop() })

	waitSynced(t, sup)
	waitCounter(t, "upstream fallbacks", 10*time.Second,
		func() int64 { return sup.Counters().UpstreamFallbacks.Load() }, 1)
	waitConverged(t, h.store, rep.Store(), outside, 10*time.Second)

	if _, err := tier.AdoptSpec(outside); err != nil {
		t.Fatalf("AdoptSpec: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for sup.Target() != tierSrv.Addr() {
		if time.Now().After(deadline) {
			t.Fatalf("leaf never migrated back to the tier (target %s)", sup.Target())
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitConverged(t, h.store, rep.Store(), outside, 10*time.Second)

	// The fallback session was released on the way out: the master serves
	// only the tier's two upstream links.
	deadline = time.Now().Add(10 * time.Second)
	for h.backend.Engine.Sessions() != len(tier.Specs()) {
		if time.Now().After(deadline) {
			t.Fatalf("master sessions = %d, want %d (fallback session not released)",
				h.backend.Engine.Sessions(), len(tier.Specs()))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdoptedSpecsDurable: adopted specs and the filter generation are part
// of the tier's durable footprint — a restart re-links them and watch
// clients never see the generation move backwards.
func TestAdoptedSpecsDurable(t *testing.T) {
	h := newHarness(t)
	cfg := h.tierConfig(t)
	cfg.StateDir = t.TempDir()
	cfg.CheckpointEvery = 5 * time.Millisecond

	tier, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tier.Start()
	waitSynced(t, tier.Supervisors()[0])

	outside := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=05*)")
	sup, err := tier.AdoptSpec(outside)
	if err != nil {
		t.Fatalf("AdoptSpec: %v", err)
	}
	waitSynced(t, sup)
	waitCounter(t, "filter generation", 10*time.Second, func() int64 {
		gen, _ := tier.FilterGeneration()
		return int64(gen)
	}, 1)
	waitConverged(t, h.store, tier.Replica().Store(), outside, 10*time.Second)
	gen1, _ := tier.FilterGeneration()
	if err := tier.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := tier.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	tier2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tier2.Specs()); got != 2 {
		t.Fatalf("restarted tier specs = %d, want 2 (adopted spec lost)", got)
	}
	if err := tier2.Admit(outside); err != nil {
		t.Errorf("restarted tier rejects the adopted spec: %v", err)
	}
	if gen2, _ := tier2.FilterGeneration(); gen2 < gen1 {
		t.Errorf("filter generation moved backwards across restart: %d -> %d", gen1, gen2)
	}
	if got := countPrefix(tier2.Replica().Store(), "05"); got == 0 {
		t.Error("restarted tier restored no adopted-spec content")
	}
	tier2.Start()
	t.Cleanup(func() { _ = tier2.Stop() })
	waitConverged(t, h.store, tier2.Replica().Store(), outside, 10*time.Second)
}

// TestRevolutionNeverStrandsLeaf: retiring a spec out from under an
// attached leaf while the master churns that region must re-refer the leaf
// to the fallback without losing an update — the leaf ends converged on
// the master's final content. Run with -race in CI.
func TestRevolutionNeverStrandsLeaf(t *testing.T) {
	h := newHarness(t)
	tier, tierSrv := startTier(t, h.tierConfig(t), "ldap://"+h.srv.Addr())
	waitSynced(t, tier.Supervisors()[0])

	outside := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=05*)")
	sup, err := tier.AdoptSpec(outside)
	if err != nil {
		t.Fatalf("AdoptSpec: %v", err)
	}
	waitSynced(t, sup)

	leaf, rep := startLeaf(t, outside, tierSrv.Addr(), h.srv.Addr(), supervisor.ModePersist)
	waitSynced(t, leaf)
	if got := leaf.Target(); got != tierSrv.Addr() {
		t.Fatalf("leaf target = %s, want tier %s", got, tierSrv.Addr())
	}
	waitConverged(t, h.store, rep.Store(), outside, 10*time.Second)

	// Churn the retired region from a second goroutine while the
	// revolution runs.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			d := dn.MustParse("cn=05-p1,c=us,o=xyz")
			if err := h.store.Modify(d, []dit.Mod{{Op: dit.ModReplace, Attr: "sn", Values: []string{"rev"}}}); err != nil {
				t.Errorf("churn modify: %v", err)
				return
			}
			if err := h.store.Add(personEntry("05", 100+round)); err != nil {
				t.Errorf("churn add: %v", err)
				return
			}
			if round > 0 {
				if err := h.store.Delete(dn.MustParse(personEntry("05", 99+round).DN().String())); err != nil {
					t.Errorf("churn delete: %v", err)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(10 * time.Millisecond) // let churn overlap the attached phase
	kicked, err := tier.RetireSpec(outside)
	if err != nil {
		close(stop)
		wg.Wait()
		t.Fatalf("RetireSpec: %v", err)
	}
	if kicked < 1 {
		t.Errorf("retire kicked %d sessions, want >= 1", kicked)
	}

	waitCounter(t, "leaf fallbacks", 10*time.Second,
		func() int64 { return leaf.Counters().UpstreamFallbacks.Load() }, 1)
	close(stop)
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for leaf.Target() != h.srv.Addr() {
		if time.Now().After(deadline) {
			t.Fatalf("kicked leaf never re-attached to fallback (target %s)", leaf.Target())
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitConverged(t, h.store, rep.Store(), outside, 10*time.Second)
}
