// Package cascade builds replication trees out of filter-based replicas: a
// mid-tier replica consumes one or more content specs from its upstream
// (the master, or another mid-tier) exactly like a leaf replica does, and
// at the same time runs its own resynchronization engine over the local
// content store so downstream replicas can attach to it instead of the
// master. The master's fan-out then scales with the number of mid-tiers,
// not the number of leaves.
//
// Admission is containment-gated: a downstream spec is served only when
// the paper's QC algorithm proves it contained in one of the tier's
// configured specs — the tier provably holds every entry the downstream
// selects, so serving it locally is byte-equivalent to serving it from the
// master. A spec that cannot be proven contained is rejected with
// ldapnet.ErrNotContained (a referral on the wire); the downstream
// supervisor reacts by diverting to its fallback master.
//
// Update propagation needs no translation layer: the tier's supervisors
// apply upstream batches into the shared replica store, which journals
// each change under a local CSN and fires the store's change signal; the
// tier engine's sessions classify those journal entries per downstream
// spec (the net E01/E10/E11 sets), so a delta arriving from upstream
// re-broadcasts to every affected downstream group as a minimal update
// set. An upstream full reload becomes a mass delete+add in the local
// journal and is absorbed by the same classification — a downstream that
// polls across it still receives only its net difference, which is the
// transitive form of the paper's equation 3 argument. Only when the local
// journal has been trimmed past a downstream's sync point does the tier
// degrade that session to a full reload, which is sound, just bigger.
package cascade

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"filterdir/internal/containment"
	"filterdir/internal/dit"
	"filterdir/internal/edgewrite"
	"filterdir/internal/ldapnet"
	"filterdir/internal/metrics"
	"filterdir/internal/persist"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
	"filterdir/internal/supervisor"
)

// Config parameterizes a Tier. Upstream and Specs are required.
type Config struct {
	// Upstream is the address this tier synchronizes from (the master, or
	// a higher mid-tier).
	Upstream string
	// Fallback is the root master's address. The tier's own supervisors
	// divert to it when Upstream rejects or forgets them (see
	// supervisor.Config.Fallback); leave empty when Upstream is the master.
	Fallback string
	// RetryUpstreamAfter is forwarded to the supervisors (how long a
	// diverted supervisor stays on the fallback before re-probing).
	RetryUpstreamAfter time.Duration
	// Specs are the tier's replicated content specs — both what it pulls
	// from upstream and the admission universe for downstream sessions.
	Specs []query.Query
	// Depth is this tier's distance from the master (1 = directly below
	// it); reported through the cascade counters.
	Depth int
	// Mode selects the upstream steady state (poll or persist stream).
	Mode supervisor.Mode
	// StateDir durably checkpoints the store and upstream cookies when
	// non-empty (via internal/persist: snapshot + journal + cookies file).
	StateDir string
	// CheckpointEvery is the durability cadence (default 2s).
	CheckpointEvery time.Duration
	// JournalLimit bounds the local store's journal, and with it how far
	// behind a downstream session may lag before degrading to a full
	// reload (default 4096 changes).
	JournalLimit int
	// ReloadChunk serves downstream full reloads in resumable chunks of
	// this many entries (0 = monolithic).
	ReloadChunk int
	// KeepSyncPoints is the downstream engine's per-session resume-history
	// retention (0 = the engine default).
	KeepSyncPoints int
	// JournalRetention, when any bound is set, replaces the fixed
	// 64-append cadence for folding the durable journal into a full
	// snapshot: a checkpoint takes a snapshot once journal.ldif is over
	// the policy's size or age bound.
	JournalRetention persist.JournalRetention
	// ContentIndexes maintains equality/prefix indexes on the tier store.
	ContentIndexes []string
	// Checker shares a containment checker (and its compiled plans).
	Checker *containment.Checker
	// PollInterval, IdleTimeout, BackoffBase, BackoffMax and DialTimeout
	// are forwarded to the upstream supervisors.
	PollInterval, IdleTimeout time.Duration
	BackoffBase, BackoffMax   time.Duration
	DialTimeout               time.Duration
	// WatchFilters arms each upstream supervisor's filters-changed
	// long-poll while diverted: a widened upstream triggers an immediate
	// re-probe instead of waiting out RetryUpstreamAfter.
	WatchFilters bool
	// Seed makes supervisor backoff jitter deterministic (supervisor i
	// gets Seed+i; adopted specs continue the sequence).
	Seed int64
	// Dial is the upstream transport hook (nil = TCP).
	Dial ldapnet.DialFunc
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2 * time.Second
	}
	if c.JournalLimit <= 0 {
		c.JournalLimit = 4096
	}
	if c.Depth <= 0 {
		c.Depth = 1
	}
	if c.Checker == nil {
		c.Checker = containment.NewChecker()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Tier is one mid-tier node: a filter replica fed by upstream supervisors,
// plus a resync engine over the replica's store serving downstream
// replicas, plus the containment gate between them. It implements
// ldapnet.SyncSupplier, so wrapping it in an ldapnet.CascadeBackend and a
// server makes it network-attachable.
type Tier struct {
	cfg      Config
	rep      *replica.FilterReplica
	eng      *resync.Engine
	counters *metrics.CascadeCounters

	// links are the tier's upstream synchronization links — one per
	// replicated spec. The set is dynamic: an adaptive control plane
	// (internal/tierctl) adopts widened specs and retires decayed ones at
	// runtime; base links (from Config.Specs) can never be retired.
	linkMu  sync.Mutex
	links   []*upstreamLink
	nextSeq int64 // supervisor seed sequence, monotonic across adopt/retire
	started bool

	// Filter generation: bumped on every adopt/retire; genCh is closed and
	// replaced on each bump so watchers (the ldapnet filters-watch control)
	// can long-poll for the next change.
	genMu sync.Mutex
	gen   uint64
	genCh chan struct{}

	// admitObserver, when set, sees every downstream admission decision —
	// the control plane's demand signal for widening.
	admitMu       sync.Mutex
	admitObserver func(q query.Query, admitted bool)

	// Apply→rebroadcast latency: the supervisor's OnApplied stamps
	// lastApply and arms applyPending; the engine observer consumes the
	// flag on the first downstream delivery that follows.
	lastApply    atomic.Int64 // UnixNano of the newest upstream apply
	applyPending atomic.Bool

	// Master-coordinate watermark translation for downstream consumers:
	// each link holds its supervisor's latest reported upstream watermark,
	// wm maps local journal positions to the min over them (the
	// conservative bound — any downstream spec rides some link's stream).
	wm watermarkMap

	// edge, when attached, is the tier's own write acceptor; the
	// supervisors feed it their watermarks so its pending ops retire.
	edgeMu sync.Mutex
	edge   *edgewrite.Writer

	st *tierState // durable state (nil without StateDir)

	stop      chan struct{}
	stopOnce  sync.Once
	loopDone  chan struct{}
	startOnce sync.Once
}

var (
	_ ldapnet.SyncSupplier  = (*Tier)(nil)
	_ ldapnet.FilterWatcher = (*Tier)(nil)
)

// upstreamLink is one upstream synchronization link: the normalized spec,
// the supervisor pulling it, and the supervisor's latest reported upstream
// watermark. base marks specs from Config.Specs, which the adaptive control
// plane may never retire.
type upstreamLink struct {
	spec query.Query
	sup  *supervisor.Supervisor
	wm   atomic.Uint64
	base bool
}

// New builds a tier: restores durable state if present (including any
// previously adopted specs and the filter generation), then constructs the
// engine and one upstream supervisor per spec (armed with any restored
// resume cookie). Start launches them.
func New(cfg Config) (*Tier, error) {
	cfg.fillDefaults()
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("cascade: upstream address required")
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("cascade: at least one content spec required")
	}
	rep, err := replica.NewFilterReplica(
		replica.WithChecker(cfg.Checker),
		replica.WithJournalLimit(cfg.JournalLimit),
		replica.WithContentIndexes(cfg.ContentIndexes...),
	)
	if err != nil {
		return nil, err
	}
	t := &Tier{
		cfg:      cfg,
		rep:      rep,
		counters: &metrics.CascadeCounters{},
		genCh:    make(chan struct{}),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	t.counters.TierDepth.Store(int64(cfg.Depth))

	cookies := map[string]string{}
	var adopted []query.Query
	if cfg.StateDir != "" {
		st, restored, err := openState(cfg, rep, t.counters)
		if err != nil {
			return nil, fmt.Errorf("cascade: restore state: %w", err)
		}
		t.st = st
		cookies = restored.cookies
		adopted = restored.adopted
		t.gen = restored.generation
	}

	// The engine runs over the same store the supervisors apply into:
	// upstream batches journal local CSNs there, and downstream sessions
	// classify against that journal. Downstream watermark stamps are
	// translated from local to master coordinates so edge writers below
	// this tier can retire against them.
	var engOpts []resync.EngineOption
	if cfg.ReloadChunk > 0 {
		engOpts = append(engOpts, resync.WithChunkSize(cfg.ReloadChunk))
	}
	if cfg.KeepSyncPoints > 0 {
		engOpts = append(engOpts, resync.WithSyncPointRetention(cfg.KeepSyncPoints))
	}
	t.eng = resync.NewEngine(rep.Store(), engOpts...)
	t.eng.SetWatermarkFunc(t.wm.lookup)
	t.eng.SetObserver(func(_ string, updates []resync.Update, fullReload bool) {
		if len(updates) == 0 && !fullReload {
			return
		}
		if t.applyPending.CompareAndSwap(true, false) {
			d := time.Duration(time.Now().UnixNano() - t.lastApply.Load())
			t.counters.ObserveRebroadcast(d)
		}
	})

	for _, spec := range cfg.Specs {
		nq := spec.Normalize()
		link, err := t.newLink(nq, cookies[nq.Key()], true)
		if err != nil {
			return nil, err
		}
		t.links = append(t.links, link)
	}
	for _, spec := range adopted {
		link, err := t.newLink(spec, cookies[spec.Key()], false)
		if err != nil {
			return nil, err
		}
		t.links = append(t.links, link)
	}
	return t, nil
}

// newLink builds an upstream link (spec must be normalized); the caller
// appends it to t.links and, on a started tier, starts its supervisor.
func (t *Tier) newLink(spec query.Query, cookie string, base bool) (*upstreamLink, error) {
	link := &upstreamLink{spec: spec, base: base}
	seq := t.nextSeq
	t.nextSeq++
	sup, err := supervisor.New(supervisor.Config{
		Master:             t.cfg.Upstream,
		Fallback:           t.cfg.Fallback,
		RetryUpstreamAfter: t.cfg.RetryUpstreamAfter,
		WatchFilters:       t.cfg.WatchFilters,
		Spec:               spec,
		Mode:               t.cfg.Mode,
		PollInterval:       t.cfg.PollInterval,
		IdleTimeout:        t.cfg.IdleTimeout,
		BackoffBase:        t.cfg.BackoffBase,
		BackoffMax:         t.cfg.BackoffMax,
		DialTimeout:        t.cfg.DialTimeout,
		Seed:               t.cfg.Seed + seq,
		Dial:               t.cfg.Dial,
		Logf:               t.cfg.Logf,
		ResumeCookie:       cookie,
		OnApplied:          t.noteApply,
		OnWatermark:        func(csn uint64) { t.noteWatermark(link, csn) },
	}, t.rep)
	if err != nil {
		return nil, err
	}
	link.sup = sup
	return link, nil
}

// snapshotLinks copies the current link slice (the slice header only; links
// themselves are shared).
func (t *Tier) snapshotLinks() []*upstreamLink {
	t.linkMu.Lock()
	defer t.linkMu.Unlock()
	return append([]*upstreamLink(nil), t.links...)
}

// Specs returns the tier's current normalized admission universe: the base
// specs plus any adopted by the control plane.
func (t *Tier) Specs() []query.Query {
	t.linkMu.Lock()
	defer t.linkMu.Unlock()
	specs := make([]query.Query, len(t.links))
	for i, link := range t.links {
		specs[i] = link.spec
	}
	return specs
}

// BaseSpecs returns the operator-configured specs — the links the adaptive
// control plane pins and can never retire.
func (t *Tier) BaseSpecs() []query.Query {
	t.linkMu.Lock()
	defer t.linkMu.Unlock()
	var out []query.Query
	for _, link := range t.links {
		if link.base {
			out = append(out, link.spec)
		}
	}
	return out
}

// FilterGeneration implements ldapnet.FilterWatcher: the current admission
// filter generation and a channel closed when it next changes.
func (t *Tier) FilterGeneration() (uint64, <-chan struct{}) {
	t.genMu.Lock()
	defer t.genMu.Unlock()
	return t.gen, t.genCh
}

// bumpGeneration advances the filter generation and wakes all watchers.
func (t *Tier) bumpGeneration() {
	t.genMu.Lock()
	t.gen++
	close(t.genCh)
	t.genCh = make(chan struct{})
	t.genMu.Unlock()
}

// SetAdmissionObserver registers a hook that sees every downstream
// admission decision (the control plane's demand signal). Pass nil to
// clear.
func (t *Tier) SetAdmissionObserver(fn func(q query.Query, admitted bool)) {
	t.admitMu.Lock()
	t.admitObserver = fn
	t.admitMu.Unlock()
}

// noteWatermark folds one link's upstream watermark into the tier's
// coordinate translation: once every link has reported, the minimum is
// recorded against the store's current local position (conservative —
// content at this position reflects at least that much of the master for
// every spec). An attached edge writer receives the per-source watermark
// directly; its own min-over-sources gates retirement.
func (t *Tier) noteWatermark(link *upstreamLink, csn uint64) {
	link.wm.Store(csn)
	links := t.snapshotLinks()
	min := uint64(0)
	for _, l := range links {
		v := l.wm.Load()
		if v == 0 {
			min = 0
			break
		}
		if min == 0 || v < min {
			min = v
		}
	}
	if min > 0 {
		t.wm.record(t.rep.Store().LastCSN(), min)
	}
	t.edgeMu.Lock()
	edge := t.edge
	t.edgeMu.Unlock()
	if edge != nil {
		edge.SetWatermark(link.spec.Key(), csn)
	}
}

// AttachEdgeWriter arms the tier's own write path: the writer's watermark
// sources are registered (one per upstream spec) and fed from the
// supervision loops. Build the writer with AdmitWrite as its gate and the
// tier store's Get as its lookup.
func (t *Tier) AttachEdgeWriter(w *edgewrite.Writer) {
	for _, spec := range t.Specs() {
		w.RegisterSource(spec.Key())
	}
	t.edgeMu.Lock()
	t.edge = w
	t.edgeMu.Unlock()
}

// AdmitWrite gates a direct edge write at this tier: adds must fall under a
// configured spec, targeted ops must name held entries (see
// edgewrite.Admitter).
func (t *Tier) AdmitWrite(c dit.Change) error {
	return edgewrite.Admitter(t.Specs(), t.rep.Store().Get)(c)
}

// noteApply records one applied upstream batch and stamps the latency
// clock for the next downstream rebroadcast.
func (t *Tier) noteApply(n int) {
	t.counters.UpstreamBatches.Add(1)
	t.counters.UpstreamUpdates.Add(int64(n))
	if n > 0 {
		t.lastApply.Store(time.Now().UnixNano())
		t.applyPending.Store(true)
	}
}

// Start launches the upstream supervisors and the checkpoint loop
// (idempotent). Specs adopted after Start get their supervisors started by
// AdoptSpec itself.
func (t *Tier) Start() {
	t.startOnce.Do(func() {
		t.linkMu.Lock()
		t.started = true
		links := append([]*upstreamLink(nil), t.links...)
		t.linkMu.Unlock()
		for _, link := range links {
			link.sup.Start()
		}
		go t.persistLoop()
	})
}

// Stop halts the supervisors and the checkpoint loop, then writes a final
// checkpoint so a restart resumes from the stop point.
func (t *Tier) Stop() error {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.loopDone
	var firstErr error
	for _, link := range t.snapshotLinks() {
		if err := link.sup.Stop(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := t.Checkpoint(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// persistLoop checkpoints on the configured cadence until Stop.
func (t *Tier) persistLoop() {
	defer close(t.loopDone)
	if t.st == nil {
		<-t.stop
		return
	}
	ticker := time.NewTicker(t.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			if err := t.Checkpoint(); err != nil {
				t.cfg.Logf("cascade: checkpoint: %v", err)
			}
		}
	}
}

// Checkpoint durably records the store and the upstream cookies (no-op
// without a state directory). Cookies are captured before the content is
// written, so the durable cookie is never newer than the durable content;
// a crash between the two leaves a slightly-older cookie whose resume
// re-sends updates the content already holds, which applies idempotently.
func (t *Tier) Checkpoint() error {
	if t.st == nil {
		return nil
	}
	links := t.snapshotLinks()
	gen, _ := t.FilterGeneration()
	disk := diskCookies{Cookies: make(map[string]cookieEntry, len(links)), Generation: gen}
	for _, link := range links {
		disk.Cookies[link.spec.Key()] = cookieEntry{Cookie: link.sup.Cookie(), Addr: link.sup.Target()}
		if !link.base {
			disk.Adopted = append(disk.Adopted, diskSpecOf(link.spec))
		}
	}
	return t.st.checkpoint(t.rep.Store(), disk, t.counters)
}

// Admit checks a downstream spec against the tier's current specs with the
// QC algorithm, returning nil when some spec provably contains it. The gate
// uses the configured link set, not the replica's live stored-query set, so
// a supervisor mid-reset (content momentarily unregistered) cannot reject a
// spec the tier is configured to serve. Every decision is reported to the
// admission observer, if one is registered — rejections are the adaptive
// control plane's primary widening signal.
func (t *Tier) Admit(q query.Query) error {
	t.counters.AdmitChecks.Add(1)
	nq := q.Normalize()
	admitted := false
	for _, spec := range t.Specs() {
		if t.cfg.Checker.QueryContains(nq, spec) {
			admitted = true
			break
		}
	}
	t.admitMu.Lock()
	obs := t.admitObserver
	t.admitMu.Unlock()
	if obs != nil {
		obs(nq, admitted)
	}
	if admitted {
		t.counters.Admitted.Add(1)
		return nil
	}
	t.counters.Rejected.Add(1)
	return fmt.Errorf("%w: %s", ldapnet.ErrNotContained, q.FilterString())
}

// SyncBegin implements ldapnet.SyncSupplier: containment-gated session
// establishment against the tier engine.
func (t *Tier) SyncBegin(q query.Query) (*resync.PollResult, error) {
	if err := t.Admit(q); err != nil {
		return nil, err
	}
	res, err := t.eng.Begin(q)
	t.counters.DownstreamSessions.Store(int64(t.eng.Sessions()))
	return res, err
}

// SyncPoll implements ldapnet.SyncSupplier.
func (t *Tier) SyncPoll(cookie string) (*resync.PollResult, error) {
	return t.eng.Poll(cookie)
}

// SyncResume implements ldapnet.SyncSupplier: chunked-reload continuation
// against the tier engine.
func (t *Tier) SyncResume(tok proto.ResumeToken) (*resync.PollResult, error) {
	return t.eng.ResumeReload(tok)
}

// SyncRetain implements ldapnet.SyncSupplier (equation 3 mode).
func (t *Tier) SyncRetain(cookie string) (*resync.PollResult, error) {
	return t.eng.PollRetain(cookie)
}

// SyncPersist implements ldapnet.SyncSupplier.
func (t *Tier) SyncPersist(cookie string) (*resync.Subscription, error) {
	return t.eng.Persist(cookie)
}

// SyncEnd implements ldapnet.SyncSupplier.
func (t *Tier) SyncEnd(cookie string) error {
	err := t.eng.End(cookie)
	t.counters.DownstreamSessions.Store(int64(t.eng.Sessions()))
	return err
}

// SyncCounters implements ldapnet.SyncSupplier with the tier engine's
// counters.
func (t *Tier) SyncCounters() *metrics.SyncCounters { return t.eng.Counters() }

// Counters exposes the cascade counters for status reporting.
func (t *Tier) Counters() *metrics.CascadeCounters { return t.counters }

// Replica exposes the tier's filter replica (searches, status).
func (t *Tier) Replica() *replica.FilterReplica { return t.rep }

// Engine exposes the downstream-facing engine (tests, status).
func (t *Tier) Engine() *resync.Engine { return t.eng }

// Supervisors exposes the current upstream supervisors, one per spec, in
// Specs order (status reporting and convergence probes).
func (t *Tier) Supervisors() []*supervisor.Supervisor {
	links := t.snapshotLinks()
	sups := make([]*supervisor.Supervisor, len(links))
	for i, link := range links {
		sups[i] = link.sup
	}
	return sups
}

// AdoptSpec widens the tier: a new upstream link is created for spec (the
// control plane's generalize/adopt action), its supervisor starts pulling
// the widened content immediately, and — once the initial synchronization
// completes — the filter generation is bumped so diverted leaves watching
// it re-probe while the content is actually present. Adopting a spec
// already linked (same normalized key) is a no-op. Returns the link's
// supervisor (nil for a duplicate).
func (t *Tier) AdoptSpec(spec query.Query) (*supervisor.Supervisor, error) {
	nq := spec.Normalize()
	key := nq.Key()
	t.linkMu.Lock()
	for _, link := range t.links {
		if link.spec.Key() == key {
			t.linkMu.Unlock()
			return nil, nil
		}
	}
	link, err := t.newLink(nq, "", false)
	if err != nil {
		t.linkMu.Unlock()
		return nil, err
	}
	t.links = append(t.links, link)
	started := t.started
	t.linkMu.Unlock()

	t.edgeMu.Lock()
	edge := t.edge
	t.edgeMu.Unlock()
	if edge != nil {
		edge.RegisterSource(key)
	}

	if started {
		link.sup.Start()
	}
	// Admission already passes for specs under nq (Specs includes the new
	// link), so an early downstream attach converges via incremental adds.
	// The generation bump — the signal that tells diverted leaves to come
	// back — waits for the initial sync so migrating leaves find the
	// widened content in place.
	go func() {
		select {
		case <-link.sup.Synced():
		case <-t.stop:
			return
		}
		t.bumpGeneration()
		t.cfg.Logf("cascade: adopted spec %s (generation %d)", nq.FilterString(), t.generation())
	}()
	return link.sup, nil
}

// RetireSpec narrows the tier: the spec's upstream link is removed from
// admission (generation bump), downstream sessions no longer contained in
// the remaining specs are gracefully ended — their next operation returns
// e-syncRefreshRequired, which their supervisors treat as a divert-to-
// fallback with a full reload, so no update is ever lost — and only then is
// the content dropped and the upstream supervisor stopped. Base specs from
// Config.Specs cannot be retired. Returns the number of downstream sessions
// re-referred.
func (t *Tier) RetireSpec(spec query.Query) (int, error) {
	nq := spec.Normalize()
	key := nq.Key()
	t.linkMu.Lock()
	idx := -1
	for i, link := range t.links {
		if link.spec.Key() == key {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.linkMu.Unlock()
		return 0, fmt.Errorf("cascade: retire %s: no such spec", nq.FilterString())
	}
	link := t.links[idx]
	if link.base {
		t.linkMu.Unlock()
		return 0, fmt.Errorf("cascade: retire %s: configured base spec", nq.FilterString())
	}
	t.links = append(t.links[:idx], t.links[idx+1:]...)
	remaining := make([]query.Query, len(t.links))
	for i, l := range t.links {
		remaining[i] = l.spec
	}
	t.linkMu.Unlock()

	// Order matters: admission narrows first (no new session can attach to
	// the doomed spec), the upstream link stops feeding it, stranded
	// downstream sessions are ended while their content is still present,
	// and the content removal last — its journaled deletes fire the store's
	// change signal, which wakes and reaps any ended persist streams.
	t.bumpGeneration()
	if err := link.sup.Stop(); err != nil {
		t.cfg.Logf("cascade: retire %s: stop supervisor: %v", nq.FilterString(), err)
	}
	kicked := t.eng.Kick(func(s query.Query) bool {
		for _, spec := range remaining {
			if t.cfg.Checker.QueryContains(s, spec) {
				return true
			}
		}
		return false
	})
	t.rep.RemoveStored(nq)
	t.counters.DownstreamSessions.Store(int64(t.eng.Sessions()))
	t.cfg.Logf("cascade: retired spec %s (%d sessions re-referred, generation %d)",
		nq.FilterString(), len(kicked), t.generation())
	return len(kicked), nil
}

// generation returns the current filter generation (logging helper).
func (t *Tier) generation() uint64 {
	gen, _ := t.FilterGeneration()
	return gen
}
