// Package cascade builds replication trees out of filter-based replicas: a
// mid-tier replica consumes one or more content specs from its upstream
// (the master, or another mid-tier) exactly like a leaf replica does, and
// at the same time runs its own resynchronization engine over the local
// content store so downstream replicas can attach to it instead of the
// master. The master's fan-out then scales with the number of mid-tiers,
// not the number of leaves.
//
// Admission is containment-gated: a downstream spec is served only when
// the paper's QC algorithm proves it contained in one of the tier's
// configured specs — the tier provably holds every entry the downstream
// selects, so serving it locally is byte-equivalent to serving it from the
// master. A spec that cannot be proven contained is rejected with
// ldapnet.ErrNotContained (a referral on the wire); the downstream
// supervisor reacts by diverting to its fallback master.
//
// Update propagation needs no translation layer: the tier's supervisors
// apply upstream batches into the shared replica store, which journals
// each change under a local CSN and fires the store's change signal; the
// tier engine's sessions classify those journal entries per downstream
// spec (the net E01/E10/E11 sets), so a delta arriving from upstream
// re-broadcasts to every affected downstream group as a minimal update
// set. An upstream full reload becomes a mass delete+add in the local
// journal and is absorbed by the same classification — a downstream that
// polls across it still receives only its net difference, which is the
// transitive form of the paper's equation 3 argument. Only when the local
// journal has been trimmed past a downstream's sync point does the tier
// degrade that session to a full reload, which is sound, just bigger.
package cascade

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"filterdir/internal/containment"
	"filterdir/internal/dit"
	"filterdir/internal/edgewrite"
	"filterdir/internal/ldapnet"
	"filterdir/internal/metrics"
	"filterdir/internal/persist"
	"filterdir/internal/proto"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
	"filterdir/internal/supervisor"
)

// Config parameterizes a Tier. Upstream and Specs are required.
type Config struct {
	// Upstream is the address this tier synchronizes from (the master, or
	// a higher mid-tier).
	Upstream string
	// Fallback is the root master's address. The tier's own supervisors
	// divert to it when Upstream rejects or forgets them (see
	// supervisor.Config.Fallback); leave empty when Upstream is the master.
	Fallback string
	// RetryUpstreamAfter is forwarded to the supervisors (how long a
	// diverted supervisor stays on the fallback before re-probing).
	RetryUpstreamAfter time.Duration
	// Specs are the tier's replicated content specs — both what it pulls
	// from upstream and the admission universe for downstream sessions.
	Specs []query.Query
	// Depth is this tier's distance from the master (1 = directly below
	// it); reported through the cascade counters.
	Depth int
	// Mode selects the upstream steady state (poll or persist stream).
	Mode supervisor.Mode
	// StateDir durably checkpoints the store and upstream cookies when
	// non-empty (via internal/persist: snapshot + journal + cookies file).
	StateDir string
	// CheckpointEvery is the durability cadence (default 2s).
	CheckpointEvery time.Duration
	// JournalLimit bounds the local store's journal, and with it how far
	// behind a downstream session may lag before degrading to a full
	// reload (default 4096 changes).
	JournalLimit int
	// ReloadChunk serves downstream full reloads in resumable chunks of
	// this many entries (0 = monolithic).
	ReloadChunk int
	// KeepSyncPoints is the downstream engine's per-session resume-history
	// retention (0 = the engine default).
	KeepSyncPoints int
	// JournalRetention, when any bound is set, replaces the fixed
	// 64-append cadence for folding the durable journal into a full
	// snapshot: a checkpoint takes a snapshot once journal.ldif is over
	// the policy's size or age bound.
	JournalRetention persist.JournalRetention
	// ContentIndexes maintains equality/prefix indexes on the tier store.
	ContentIndexes []string
	// Checker shares a containment checker (and its compiled plans).
	Checker *containment.Checker
	// PollInterval, IdleTimeout, BackoffBase, BackoffMax and DialTimeout
	// are forwarded to the upstream supervisors.
	PollInterval, IdleTimeout time.Duration
	BackoffBase, BackoffMax   time.Duration
	DialTimeout               time.Duration
	// Seed makes supervisor backoff jitter deterministic (supervisor i
	// gets Seed+i).
	Seed int64
	// Dial is the upstream transport hook (nil = TCP).
	Dial ldapnet.DialFunc
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2 * time.Second
	}
	if c.JournalLimit <= 0 {
		c.JournalLimit = 4096
	}
	if c.Depth <= 0 {
		c.Depth = 1
	}
	if c.Checker == nil {
		c.Checker = containment.NewChecker()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Tier is one mid-tier node: a filter replica fed by upstream supervisors,
// plus a resync engine over the replica's store serving downstream
// replicas, plus the containment gate between them. It implements
// ldapnet.SyncSupplier, so wrapping it in an ldapnet.CascadeBackend and a
// server makes it network-attachable.
type Tier struct {
	cfg      Config
	specs    []query.Query // normalized admission universe
	rep      *replica.FilterReplica
	eng      *resync.Engine
	sups     []*supervisor.Supervisor
	counters *metrics.CascadeCounters

	// Apply→rebroadcast latency: the supervisor's OnApplied stamps
	// lastApply and arms applyPending; the engine observer consumes the
	// flag on the first downstream delivery that follows.
	lastApply    atomic.Int64 // UnixNano of the newest upstream apply
	applyPending atomic.Bool

	// Master-coordinate watermark translation for downstream consumers:
	// supWM holds each supervisor's latest reported upstream watermark, wm
	// maps local journal positions to the min over them (the conservative
	// bound — any downstream spec rides some supervisor's stream).
	supWM []atomic.Uint64
	wm    watermarkMap

	// edge, when attached, is the tier's own write acceptor; the
	// supervisors feed it their watermarks so its pending ops retire.
	edgeMu sync.Mutex
	edge   *edgewrite.Writer

	st *tierState // durable state (nil without StateDir)

	stop      chan struct{}
	stopOnce  sync.Once
	loopDone  chan struct{}
	startOnce sync.Once
}

var _ ldapnet.SyncSupplier = (*Tier)(nil)

// New builds a tier: restores durable state if present, then constructs
// the engine and one upstream supervisor per spec (armed with any restored
// resume cookie). Start launches them.
func New(cfg Config) (*Tier, error) {
	cfg.fillDefaults()
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("cascade: upstream address required")
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("cascade: at least one content spec required")
	}
	rep, err := replica.NewFilterReplica(
		replica.WithChecker(cfg.Checker),
		replica.WithJournalLimit(cfg.JournalLimit),
		replica.WithContentIndexes(cfg.ContentIndexes...),
	)
	if err != nil {
		return nil, err
	}
	t := &Tier{
		cfg:      cfg,
		rep:      rep,
		counters: &metrics.CascadeCounters{},
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	t.counters.TierDepth.Store(int64(cfg.Depth))
	for _, q := range cfg.Specs {
		t.specs = append(t.specs, q.Normalize())
	}

	cookies := map[string]string{}
	if cfg.StateDir != "" {
		st, restored, err := openState(cfg, rep, t.counters)
		if err != nil {
			return nil, fmt.Errorf("cascade: restore state: %w", err)
		}
		t.st = st
		cookies = restored
	}

	// The engine runs over the same store the supervisors apply into:
	// upstream batches journal local CSNs there, and downstream sessions
	// classify against that journal. Downstream watermark stamps are
	// translated from local to master coordinates so edge writers below
	// this tier can retire against them.
	var engOpts []resync.EngineOption
	if cfg.ReloadChunk > 0 {
		engOpts = append(engOpts, resync.WithChunkSize(cfg.ReloadChunk))
	}
	if cfg.KeepSyncPoints > 0 {
		engOpts = append(engOpts, resync.WithSyncPointRetention(cfg.KeepSyncPoints))
	}
	t.eng = resync.NewEngine(rep.Store(), engOpts...)
	t.supWM = make([]atomic.Uint64, len(t.specs))
	t.eng.SetWatermarkFunc(t.wm.lookup)
	t.eng.SetObserver(func(_ string, updates []resync.Update, fullReload bool) {
		if len(updates) == 0 && !fullReload {
			return
		}
		if t.applyPending.CompareAndSwap(true, false) {
			d := time.Duration(time.Now().UnixNano() - t.lastApply.Load())
			t.counters.ObserveRebroadcast(d)
		}
	})

	for i, spec := range t.specs {
		sup, err := supervisor.New(supervisor.Config{
			Master:             cfg.Upstream,
			Fallback:           cfg.Fallback,
			RetryUpstreamAfter: cfg.RetryUpstreamAfter,
			Spec:               spec,
			Mode:               cfg.Mode,
			PollInterval:       cfg.PollInterval,
			IdleTimeout:        cfg.IdleTimeout,
			BackoffBase:        cfg.BackoffBase,
			BackoffMax:         cfg.BackoffMax,
			DialTimeout:        cfg.DialTimeout,
			Seed:               cfg.Seed + int64(i),
			Dial:               cfg.Dial,
			Logf:               cfg.Logf,
			ResumeCookie:       cookies[spec.Key()],
			OnApplied:          t.noteApply,
			OnWatermark:        func(i int) func(uint64) { return func(csn uint64) { t.noteWatermark(i, csn) } }(i),
		}, rep)
		if err != nil {
			return nil, err
		}
		t.sups = append(t.sups, sup)
	}
	return t, nil
}

// noteWatermark folds supervisor i's upstream watermark into the tier's
// coordinate translation: once every supervisor has reported, the minimum
// is recorded against the store's current local position (conservative —
// content at this position reflects at least that much of the master for
// every spec). An attached edge writer receives the per-source watermark
// directly; its own min-over-sources gates retirement.
func (t *Tier) noteWatermark(i int, csn uint64) {
	t.supWM[i].Store(csn)
	min := uint64(0)
	for j := range t.supWM {
		v := t.supWM[j].Load()
		if v == 0 {
			min = 0
			break
		}
		if min == 0 || v < min {
			min = v
		}
	}
	if min > 0 {
		t.wm.record(t.rep.Store().LastCSN(), min)
	}
	t.edgeMu.Lock()
	edge := t.edge
	t.edgeMu.Unlock()
	if edge != nil {
		edge.SetWatermark(t.specs[i].Key(), csn)
	}
}

// AttachEdgeWriter arms the tier's own write path: the writer's watermark
// sources are registered (one per upstream spec) and fed from the
// supervision loops. Build the writer with AdmitWrite as its gate and the
// tier store's Get as its lookup.
func (t *Tier) AttachEdgeWriter(w *edgewrite.Writer) {
	for _, spec := range t.specs {
		w.RegisterSource(spec.Key())
	}
	t.edgeMu.Lock()
	t.edge = w
	t.edgeMu.Unlock()
}

// AdmitWrite gates a direct edge write at this tier: adds must fall under a
// configured spec, targeted ops must name held entries (see
// edgewrite.Admitter).
func (t *Tier) AdmitWrite(c dit.Change) error {
	return edgewrite.Admitter(t.specs, t.rep.Store().Get)(c)
}

// noteApply records one applied upstream batch and stamps the latency
// clock for the next downstream rebroadcast.
func (t *Tier) noteApply(n int) {
	t.counters.UpstreamBatches.Add(1)
	t.counters.UpstreamUpdates.Add(int64(n))
	if n > 0 {
		t.lastApply.Store(time.Now().UnixNano())
		t.applyPending.Store(true)
	}
}

// Start launches the upstream supervisors and the checkpoint loop
// (idempotent).
func (t *Tier) Start() {
	t.startOnce.Do(func() {
		for _, sup := range t.sups {
			sup.Start()
		}
		go t.persistLoop()
	})
}

// Stop halts the supervisors and the checkpoint loop, then writes a final
// checkpoint so a restart resumes from the stop point.
func (t *Tier) Stop() error {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.loopDone
	var firstErr error
	for _, sup := range t.sups {
		if err := sup.Stop(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := t.Checkpoint(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// persistLoop checkpoints on the configured cadence until Stop.
func (t *Tier) persistLoop() {
	defer close(t.loopDone)
	if t.st == nil {
		<-t.stop
		return
	}
	ticker := time.NewTicker(t.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			if err := t.Checkpoint(); err != nil {
				t.cfg.Logf("cascade: checkpoint: %v", err)
			}
		}
	}
}

// Checkpoint durably records the store and the upstream cookies (no-op
// without a state directory). Cookies are captured before the content is
// written, so the durable cookie is never newer than the durable content;
// a crash between the two leaves a slightly-older cookie whose resume
// re-sends updates the content already holds, which applies idempotently.
func (t *Tier) Checkpoint() error {
	if t.st == nil {
		return nil
	}
	cookies := make(map[string]cookieEntry, len(t.sups))
	for i, sup := range t.sups {
		cookies[t.specs[i].Key()] = cookieEntry{Cookie: sup.Cookie(), Addr: sup.Target()}
	}
	return t.st.checkpoint(t.rep.Store(), cookies, t.counters)
}

// Admit checks a downstream spec against the tier's configured specs with
// the QC algorithm, returning nil when some spec provably contains it. The
// gate uses the static configuration, not the replica's live stored-query
// set, so a supervisor mid-reset (content momentarily unregistered) cannot
// reject a spec the tier is configured to serve.
func (t *Tier) Admit(q query.Query) error {
	t.counters.AdmitChecks.Add(1)
	nq := q.Normalize()
	for _, spec := range t.specs {
		if t.cfg.Checker.QueryContains(nq, spec) {
			t.counters.Admitted.Add(1)
			return nil
		}
	}
	t.counters.Rejected.Add(1)
	return fmt.Errorf("%w: %s", ldapnet.ErrNotContained, q.FilterString())
}

// SyncBegin implements ldapnet.SyncSupplier: containment-gated session
// establishment against the tier engine.
func (t *Tier) SyncBegin(q query.Query) (*resync.PollResult, error) {
	if err := t.Admit(q); err != nil {
		return nil, err
	}
	res, err := t.eng.Begin(q)
	t.counters.DownstreamSessions.Store(int64(t.eng.Sessions()))
	return res, err
}

// SyncPoll implements ldapnet.SyncSupplier.
func (t *Tier) SyncPoll(cookie string) (*resync.PollResult, error) {
	return t.eng.Poll(cookie)
}

// SyncResume implements ldapnet.SyncSupplier: chunked-reload continuation
// against the tier engine.
func (t *Tier) SyncResume(tok proto.ResumeToken) (*resync.PollResult, error) {
	return t.eng.ResumeReload(tok)
}

// SyncRetain implements ldapnet.SyncSupplier (equation 3 mode).
func (t *Tier) SyncRetain(cookie string) (*resync.PollResult, error) {
	return t.eng.PollRetain(cookie)
}

// SyncPersist implements ldapnet.SyncSupplier.
func (t *Tier) SyncPersist(cookie string) (*resync.Subscription, error) {
	return t.eng.Persist(cookie)
}

// SyncEnd implements ldapnet.SyncSupplier.
func (t *Tier) SyncEnd(cookie string) error {
	err := t.eng.End(cookie)
	t.counters.DownstreamSessions.Store(int64(t.eng.Sessions()))
	return err
}

// SyncCounters implements ldapnet.SyncSupplier with the tier engine's
// counters.
func (t *Tier) SyncCounters() *metrics.SyncCounters { return t.eng.Counters() }

// Counters exposes the cascade counters for status reporting.
func (t *Tier) Counters() *metrics.CascadeCounters { return t.counters }

// Replica exposes the tier's filter replica (searches, status).
func (t *Tier) Replica() *replica.FilterReplica { return t.rep }

// Engine exposes the downstream-facing engine (tests, status).
func (t *Tier) Engine() *resync.Engine { return t.eng }

// Supervisors exposes the upstream supervisors, one per spec, in Specs
// order (status reporting and convergence probes).
func (t *Tier) Supervisors() []*supervisor.Supervisor { return t.sups }
