package cascade

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"

	"filterdir/internal/dit"
	"filterdir/internal/metrics"
	"filterdir/internal/persist"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
)

// Durable tier state reuses internal/persist.Dir for the content — a
// snapshot.ldif plus journal.ldif pair with torn-tail repair on open — and
// adds a cookies.json recording, per spec, the upstream session cookie and
// the address it was issued by:
//
//	<StateDir>/store/snapshot.ldif   content at the last full checkpoint
//	<StateDir>/store/journal.ldif    changes appended since
//	<StateDir>/cookies.json          {spec key → {cookie, addr}}
//
// Most checkpoints are journal appends; a full snapshot (which also
// truncates the journal) is taken on the first checkpoint after a restart
// — the restored store's CSNs restart from zero, so the old journal's
// watermark is meaningless — and periodically to bound journal growth:
// every fullCheckpointEvery appends by default, or whenever the journal
// exceeds the configured JournalRetention size/age policy.
const (
	storeDirName    = "store"
	cookiesFileName = "cookies.json"

	fullCheckpointEvery = 64
)

// cookieEntry is one spec's durable session position.
type cookieEntry struct {
	Cookie string `json:"cookie"`
	// Addr is the upstream that issued the cookie; a restart resumes with
	// the cookie only when it matches the configured upstream (a cookie
	// from the fallback is dropped — the tier re-begins at its upstream).
	Addr string `json:"addr,omitempty"`
}

// diskCookies is the JSON body of cookies.json.
type diskCookies struct {
	Cookies map[string]cookieEntry `json:"cookies"`
}

// tierState owns the durable files and the journal watermark.
type tierState struct {
	dir         persist.Dir
	cookiesPath string
	retention   persist.JournalRetention
	logf        func(string, ...any)

	mu        sync.Mutex
	watermark dit.CSN
	needFull  bool
	appends   int // journal appends since the last full snapshot
}

// openState loads a previous incarnation's checkpoint into rep and returns
// the state handle plus the per-spec resume cookies. Content is restored
// by replaying the durable store through each configured spec — MatchAll
// selects the spec's entries, AddStored+ApplySync rebuild the replica's
// reference counts exactly as live synchronization would have.
func openState(cfg Config, rep *replica.FilterReplica, counters *metrics.CascadeCounters) (*tierState, map[string]string, error) {
	st := &tierState{
		dir:         persist.Dir{Path: filepath.Join(cfg.StateDir, storeDirName)},
		cookiesPath: filepath.Join(cfg.StateDir, cookiesFileName),
		retention:   cfg.JournalRetention,
		logf:        cfg.Logf,
		needFull:    true,
	}
	var disk diskCookies
	raw, err := os.ReadFile(st.cookiesPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh directory (or a crash before the first cookie write).
	case err != nil:
		return nil, nil, err
	default:
		if err := json.Unmarshal(raw, &disk); err != nil {
			// A corrupt cookie file costs a re-Begin, not the content.
			cfg.Logf("cascade: discarding corrupt cookies file: %v", err)
			disk.Cookies = nil
		}
	}

	// The tier's content is sparse — selected entries without their
	// ancestors — so journal replay must use upsert semantics.
	store, err := st.dir.OpenSparse([]string{""})
	if err != nil {
		return nil, nil, err
	}

	cookies := make(map[string]string, len(cfg.Specs))
	restored := false
	for _, spec := range cfg.Specs {
		spec = spec.Normalize()
		resume := ""
		if ce, ok := disk.Cookies[spec.Key()]; ok && ce.Cookie != "" {
			if ce.Addr == "" || ce.Addr == cfg.Upstream {
				resume = ce.Cookie
			} else {
				cfg.Logf("cascade: dropping cookie issued by %s (upstream is %s)", ce.Addr, cfg.Upstream)
			}
		}
		sel := spec
		sel.Attrs = nil // stored entries already carry only selected attributes
		entries := store.MatchAll(sel)
		if len(entries) == 0 && resume == "" {
			continue
		}
		updates := make([]resync.Update, 0, len(entries))
		for _, e := range entries {
			updates = append(updates, resync.Update{Action: resync.ActionAdd, DN: e.DN(), Entry: e})
		}
		rep.AddStored(spec, resume)
		if err := rep.ApplySync(spec, updates); err != nil {
			return nil, nil, err
		}
		cookies[spec.Key()] = resume
		restored = true
	}
	if restored {
		counters.Restores.Add(1)
		cfg.Logf("cascade: restored %d entries from %s", rep.EntryCount(), cfg.StateDir)
	}
	return st, cookies, nil
}

// checkpoint writes content first (full snapshot or journal append), then
// the cookie file with values the caller captured before the content
// write, preserving the cookie-not-newer-than-content invariant.
func (s *tierState) checkpoint(store *dit.Store, cookies map[string]cookieEntry, counters *metrics.CascadeCounters) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	full := s.needFull || s.journalOverdue()
	if !full {
		wm, err := s.dir.AppendChanges(store, s.watermark)
		switch {
		case err != nil:
			// The store's journal no longer covers our watermark (bounded
			// history trimmed it): fall back to a full snapshot.
			full = true
		case wm != s.watermark:
			s.watermark = wm
			s.appends++
			counters.JournalAppends.Add(1)
		}
	}
	if full {
		if err := s.dir.Checkpoint(store); err != nil {
			return err
		}
		s.watermark = store.LastCSN()
		s.needFull = false
		s.appends = 0
		counters.Checkpoints.Add(1)
	}
	return persist.WriteAtomic(s.cookiesPath, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(diskCookies{Cookies: cookies})
	})
}

// journalOverdue decides whether this checkpoint should take a full
// snapshot instead of another append. With a retention policy configured
// the on-disk journal's actual size and age decide; otherwise the fixed
// append-count cadence applies.
func (s *tierState) journalOverdue() bool {
	if s.retention.Enabled() {
		over, err := s.dir.OverRetention(s.retention)
		if err != nil {
			s.logf("cascade: journal retention check: %v", err)
			return s.appends >= fullCheckpointEvery
		}
		return over
	}
	return s.appends >= fullCheckpointEvery
}
