package cascade

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"

	"filterdir/internal/dit"
	"filterdir/internal/metrics"
	"filterdir/internal/persist"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
)

// Durable tier state reuses internal/persist.Dir for the content — a
// snapshot.ldif plus journal.ldif pair with torn-tail repair on open — and
// adds a cookies.json recording, per spec, the upstream session cookie and
// the address it was issued by:
//
//	<StateDir>/store/snapshot.ldif   content at the last full checkpoint
//	<StateDir>/store/journal.ldif    changes appended since
//	<StateDir>/cookies.json          {spec key → {cookie, addr}}
//
// Most checkpoints are journal appends; a full snapshot (which also
// truncates the journal) is taken on the first checkpoint after a restart
// — the restored store's CSNs restart from zero, so the old journal's
// watermark is meaningless — and periodically to bound journal growth:
// every fullCheckpointEvery appends by default, or whenever the journal
// exceeds the configured JournalRetention size/age policy.
const (
	storeDirName    = "store"
	cookiesFileName = "cookies.json"

	fullCheckpointEvery = 64
)

// cookieEntry is one spec's durable session position.
type cookieEntry struct {
	Cookie string `json:"cookie"`
	// Addr is the upstream that issued the cookie; a restart resumes with
	// the cookie only when it matches the configured upstream (a cookie
	// from the fallback is dropped — the tier re-begins at its upstream).
	Addr string `json:"addr,omitempty"`
}

// diskSpec is the durable form of a control-plane-adopted spec: enough to
// rebuild the query.Query on restart. Base specs come from configuration
// and are never persisted.
type diskSpec struct {
	Base   string   `json:"base"`
	Scope  string   `json:"scope"`
	Filter string   `json:"filter"`
	Attrs  []string `json:"attrs,omitempty"`
}

// diskSpecOf captures a normalized spec for persistence.
func diskSpecOf(q query.Query) diskSpec {
	return diskSpec{
		Base:   q.Base.String(),
		Scope:  q.Scope.String(),
		Filter: q.FilterString(),
		Attrs:  q.Attrs,
	}
}

// spec rebuilds the query; a spec that no longer parses is reported and
// dropped (the control plane will re-adopt it from live demand if it still
// matters).
func (d diskSpec) spec() (query.Query, error) {
	scope, err := query.ParseScope(d.Scope)
	if err != nil {
		return query.Query{}, err
	}
	q, err := query.New(d.Base, scope, d.Filter, d.Attrs...)
	if err != nil {
		return query.Query{}, err
	}
	return q.Normalize(), nil
}

// diskCookies is the JSON body of cookies.json. Generation and Adopted are
// the adaptive control plane's durable footprint: the filter generation
// survives restarts (watch clients never see it move backwards) and adopted
// specs are re-linked alongside the configured ones. Older files without
// these fields load as a purely static tier.
type diskCookies struct {
	Cookies    map[string]cookieEntry `json:"cookies"`
	Generation uint64                 `json:"generation,omitempty"`
	Adopted    []diskSpec             `json:"adopted,omitempty"`
}

// restoredState is openState's result: per-spec resume cookies, the adopted
// spec set, and the filter generation at the last checkpoint.
type restoredState struct {
	cookies    map[string]string
	adopted    []query.Query
	generation uint64
}

// tierState owns the durable files and the journal watermark.
type tierState struct {
	dir         persist.Dir
	cookiesPath string
	retention   persist.JournalRetention
	logf        func(string, ...any)

	mu        sync.Mutex
	watermark dit.CSN
	needFull  bool
	appends   int // journal appends since the last full snapshot
}

// openState loads a previous incarnation's checkpoint into rep and returns
// the state handle plus the per-spec resume cookies. Content is restored
// by replaying the durable store through each configured spec — MatchAll
// selects the spec's entries, AddStored+ApplySync rebuild the replica's
// reference counts exactly as live synchronization would have.
func openState(cfg Config, rep *replica.FilterReplica, counters *metrics.CascadeCounters) (*tierState, restoredState, error) {
	st := &tierState{
		dir:         persist.Dir{Path: filepath.Join(cfg.StateDir, storeDirName)},
		cookiesPath: filepath.Join(cfg.StateDir, cookiesFileName),
		retention:   cfg.JournalRetention,
		logf:        cfg.Logf,
		needFull:    true,
	}
	res := restoredState{cookies: map[string]string{}}
	var disk diskCookies
	raw, err := os.ReadFile(st.cookiesPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh directory (or a crash before the first cookie write).
	case err != nil:
		return nil, res, err
	default:
		if err := json.Unmarshal(raw, &disk); err != nil {
			// A corrupt cookie file costs a re-Begin, not the content.
			cfg.Logf("cascade: discarding corrupt cookies file: %v", err)
			disk = diskCookies{}
		}
	}
	res.generation = disk.Generation

	// The tier's content is sparse — selected entries without their
	// ancestors — so journal replay must use upsert semantics.
	store, err := st.dir.OpenSparse([]string{""})
	if err != nil {
		return nil, res, err
	}

	specs := make([]query.Query, 0, len(cfg.Specs)+len(disk.Adopted))
	for _, spec := range cfg.Specs {
		specs = append(specs, spec.Normalize())
	}
	for _, ds := range disk.Adopted {
		spec, err := ds.spec()
		if err != nil {
			cfg.Logf("cascade: dropping unparsable adopted spec %q: %v", ds.Filter, err)
			continue
		}
		specs = append(specs, spec)
		res.adopted = append(res.adopted, spec)
	}

	restored := false
	for _, spec := range specs {
		resume := ""
		if ce, ok := disk.Cookies[spec.Key()]; ok && ce.Cookie != "" {
			if ce.Addr == "" || ce.Addr == cfg.Upstream {
				resume = ce.Cookie
			} else {
				cfg.Logf("cascade: dropping cookie issued by %s (upstream is %s)", ce.Addr, cfg.Upstream)
			}
		}
		sel := spec
		sel.Attrs = nil // stored entries already carry only selected attributes
		entries := store.MatchAll(sel)
		if len(entries) == 0 && resume == "" {
			continue
		}
		updates := make([]resync.Update, 0, len(entries))
		for _, e := range entries {
			updates = append(updates, resync.Update{Action: resync.ActionAdd, DN: e.DN(), Entry: e})
		}
		rep.AddStored(spec, resume)
		if err := rep.ApplySync(spec, updates); err != nil {
			return nil, res, err
		}
		res.cookies[spec.Key()] = resume
		restored = true
	}
	if restored {
		counters.Restores.Add(1)
		cfg.Logf("cascade: restored %d entries from %s", rep.EntryCount(), cfg.StateDir)
	}
	return st, res, nil
}

// checkpoint writes content first (full snapshot or journal append), then
// the cookie file with values the caller captured before the content
// write, preserving the cookie-not-newer-than-content invariant.
func (s *tierState) checkpoint(store *dit.Store, disk diskCookies, counters *metrics.CascadeCounters) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	full := s.needFull || s.journalOverdue()
	if !full {
		wm, err := s.dir.AppendChanges(store, s.watermark)
		switch {
		case err != nil:
			// The store's journal no longer covers our watermark (bounded
			// history trimmed it): fall back to a full snapshot.
			full = true
		case wm != s.watermark:
			s.watermark = wm
			s.appends++
			counters.JournalAppends.Add(1)
		}
	}
	if full {
		if err := s.dir.Checkpoint(store); err != nil {
			return err
		}
		s.watermark = store.LastCSN()
		s.needFull = false
		s.appends = 0
		counters.Checkpoints.Add(1)
	}
	return persist.WriteAtomic(s.cookiesPath, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(disk)
	})
}

// journalOverdue decides whether this checkpoint should take a full
// snapshot instead of another append. With a retention policy configured
// the on-disk journal's actual size and age decide; otherwise the fixed
// append-count cadence applies.
func (s *tierState) journalOverdue() bool {
	if s.retention.Enabled() {
		over, err := s.dir.OverRetention(s.retention)
		if err != nil {
			s.logf("cascade: journal retention check: %v", err)
			return s.appends >= fullCheckpointEvery
		}
		return over
	}
	return s.appends >= fullCheckpointEvery
}
