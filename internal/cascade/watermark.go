package cascade

import (
	"sync"

	"filterdir/internal/dit"
)

// watermarkPair states: the tier's content at local journal position Local
// reflected every master commit up to Upstream (for the specs the tier
// carries).
type watermarkPair struct {
	Local    dit.CSN
	Upstream uint64
}

// maxWatermarkPairs bounds the map; dropping the oldest pairs only makes
// lookups for very old downstream positions answer 0 (no claim), which is
// conservative.
const maxWatermarkPairs = 1024

// watermarkMap translates the tier's local CSN coordinates into master CSN
// coordinates for downstream consumers: each applied upstream exchange
// records a (local, upstream) pair, and a downstream session synced to
// local position L is stamped with the newest upstream watermark recorded
// at or below L. Without this translation a leaf hanging off a mid-tier
// could never retire edge writes — its ops carry master-assigned CSNs but
// its sync stream moves in mid-tier coordinates.
type watermarkMap struct {
	mu    sync.Mutex
	pairs []watermarkPair // ascending in both fields
}

// record adds a pair, keeping the slice monotone. An upstream regression
// (the tier fell back to a lagging master and reloaded) truncates every
// pair claiming more than the new position: tier content past this local
// CSN no longer reflects the newer commits, so stamping them onward would
// retire downstream ops whose effects the content may have lost. (Stamps
// already delivered before the regression are accepted staleness — see
// DESIGN.md §12.)
func (m *watermarkMap) record(local dit.CSN, upstream uint64) {
	if upstream == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for n := len(m.pairs); n > 0 && m.pairs[n-1].Upstream > upstream; n = len(m.pairs) {
		m.pairs = m.pairs[:n-1]
	}
	if n := len(m.pairs); n > 0 && m.pairs[n-1].Local >= local {
		// Same or newer local position already recorded with an upstream ≤
		// ours (truncation above removed anything newer): tighten in place.
		m.pairs[n-1].Upstream = upstream
		return
	}
	m.pairs = append(m.pairs, watermarkPair{Local: local, Upstream: upstream})
	if len(m.pairs) > maxWatermarkPairs {
		m.pairs = append(m.pairs[:0], m.pairs[len(m.pairs)-maxWatermarkPairs:]...)
	}
}

// lookup returns the newest upstream watermark recorded at or below the
// local position (0 when nothing is known that far back).
func (m *watermarkMap) lookup(local dit.CSN) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	lo, hi := 0, len(m.pairs)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.pairs[mid].Local <= local {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return m.pairs[lo-1].Upstream
}
