package cascade

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"filterdir/internal/chaos"
	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/ldapnet"
	"filterdir/internal/query"
	"filterdir/internal/replica"
	"filterdir/internal/resync"
	"filterdir/internal/supervisor"
)

// newMasterStore builds a master directory with entries inside the tier
// spec (serialnumber=04*) and outside it (serialnumber=05*).
func newMasterStore(t *testing.T) *dit.Store {
	t.Helper()
	st, err := dit.NewStore([]string{"o=xyz"}, dit.WithIndexes("serialnumber"))
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	us := entry.New(dn.MustParse("c=us,o=xyz"))
	us.Put("objectclass", "country").Put("c", "us")
	if err := st.Add(us); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := st.Add(personEntry("04", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := st.Add(personEntry("05", i)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func personEntry(prefix string, i int) *entry.Entry {
	e := entry.New(dn.MustParse(fmt.Sprintf("cn=%s-p%d,c=us,o=xyz", prefix, i)))
	e.Put("objectclass", "person", "inetOrgPerson").
		Put("cn", fmt.Sprintf("%s-p%d", prefix, i)).Put("sn", "x").
		Put("serialNumber", fmt.Sprintf("%s%02d", prefix, i))
	return e
}

// mutate touches the master inside the tier spec: modify, add, delete.
func mutate(t *testing.T, st *dit.Store, round int) {
	t.Helper()
	d := dn.MustParse("cn=04-p1,c=us,o=xyz")
	if err := st.Modify(d, []dit.Mod{{Op: dit.ModReplace, Attr: "sn", Values: []string{fmt.Sprintf("r%d", round)}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(personEntry("04", 100+round)); err != nil {
		t.Fatal(err)
	}
	if round > 0 {
		if err := st.Delete(dn.MustParse(fmt.Sprintf("cn=04-p%d,c=us,o=xyz", 99+round))); err != nil {
			t.Fatal(err)
		}
	}
}

// harness is a wire-served master plus the tier spec set.
type harness struct {
	store    *dit.Store
	backend  *ldapnet.StoreBackend
	srv      *ldapnet.Server
	inj      *chaos.Injector // wraps the master link (listener + tier dials)
	tierSpec query.Query
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	st := newMasterStore(t)
	backend := ldapnet.NewStoreBackend(st)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(chaos.Plan{})
	srv := ldapnet.ServeListener(inj.Listener(ln), backend)
	t.Cleanup(func() { _ = srv.Close() })
	return &harness{
		store:    st,
		backend:  backend,
		srv:      srv,
		inj:      inj,
		tierSpec: query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)"),
	}
}

// tierConfig builds a fast-cadence tier config against the harness master.
func (h *harness) tierConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Upstream:     h.srv.Addr(),
		Specs:        []query.Query{h.tierSpec},
		PollInterval: 3 * time.Millisecond,
		BackoffBase:  time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		DialTimeout:  2 * time.Second,
		Seed:         1,
		Dial:         h.inj.Dial(nil),
		Logf:         t.Logf,
	}
}

// startTier builds, starts and serves a tier, returning it with its server.
func startTier(t *testing.T, cfg Config, masterURL string) (*Tier, *ldapnet.Server) {
	t.Helper()
	tier, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tier.Start()
	t.Cleanup(func() { _ = tier.Stop() })
	backend := ldapnet.NewCascadeBackend(tier.Replica(), tier, masterURL)
	srv, err := ldapnet.Serve("127.0.0.1:0", backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return tier, srv
}

// startLeaf attaches a leaf supervisor to upstream (with optional fallback).
func startLeaf(t *testing.T, spec query.Query, upstream, fallback string, mode supervisor.Mode) (*supervisor.Supervisor, *replica.FilterReplica) {
	t.Helper()
	rep, err := replica.NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	sup, err := supervisor.New(supervisor.Config{
		Master:             upstream,
		Fallback:           fallback,
		RetryUpstreamAfter: time.Hour, // tests opt in to probing explicitly
		Spec:               spec,
		Mode:               mode,
		PollInterval:       3 * time.Millisecond,
		BackoffBase:        time.Millisecond,
		BackoffMax:         20 * time.Millisecond,
		DialTimeout:        2 * time.Second,
		Seed:               2,
		Logf:               t.Logf,
	}, rep)
	if err != nil {
		t.Fatal(err)
	}
	sup.Start()
	t.Cleanup(func() { _ = sup.Stop() })
	return sup, rep
}

func waitSynced(t *testing.T, sup *supervisor.Supervisor) {
	t.Helper()
	select {
	case <-sup.Synced():
	case <-time.After(10 * time.Second):
		t.Fatalf("supervisor never finished its first exchange (state %s, target %s)", sup.State(), sup.Target())
	}
}

// waitConverged polls until the replica store matches the master selection.
func waitConverged(t *testing.T, master, rep *dit.Store, spec query.Query, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok, why := resync.Converged(master, rep, spec)
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica did not converge: %s", why)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitCounter(t *testing.T, what string, timeout time.Duration, load func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", what, load(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdmissionGate exercises the containment gate directly: contained
// specs (equality, narrower prefix, attribute subset) are admitted;
// disjoint and wider specs are rejected with the typed sentinel.
func TestAdmissionGate(t *testing.T) {
	h := newHarness(t)
	tier, _ := startTier(t, h.tierConfig(t), "ldap://master")

	admit := []string{
		"(serialnumber=04*)",                        // identical
		"(serialnumber=041*)",                       // narrower prefix
		"(&(serialnumber=04*)(objectclass=person))", // extra conjunct
	}
	for _, f := range admit {
		q := query.MustNew("o=xyz", query.ScopeSubtree, f)
		if err := tier.Admit(q); err != nil {
			t.Errorf("Admit(%s) = %v, want nil", f, err)
		}
	}
	reject := []string{
		"(serialnumber=05*)", // disjoint
		"(objectclass=*)",    // wider
	}
	for _, f := range reject {
		q := query.MustNew("o=xyz", query.ScopeSubtree, f)
		err := tier.Admit(q)
		if !errors.Is(err, ldapnet.ErrNotContained) {
			t.Errorf("Admit(%s) = %v, want ErrNotContained", f, err)
		}
	}
	c := tier.Counters().Snapshot()
	if c.Admitted != int64(len(admit)) || c.Rejected != int64(len(reject)) {
		t.Errorf("admitted=%d rejected=%d, want %d and %d", c.Admitted, c.Rejected, len(admit), len(reject))
	}

	// The attrs-subset rule also applies over the wire mapping: a rejected
	// Begin surfaces as a referral result that unwraps to the sentinel.
	re := &ldapnet.ResultError{Code: 10 /* referral */}
	if !errors.Is(re, ldapnet.ErrNotContained) {
		t.Error("ResultError(referral) does not unwrap to ErrNotContained")
	}
}

// TestPropagationThroughTier is the core cascade scenario: updates applied
// at the master propagate through the mid-tier to leaves, and a leaf
// observing the mid-tier ends byte-equivalent to one attached directly to
// the master. The master sees exactly one Begin — the tier's — however
// many leaves attach downstream.
func TestPropagationThroughTier(t *testing.T) {
	h := newHarness(t)
	tier, tierSrv := startTier(t, h.tierConfig(t), "ldap://"+h.srv.Addr())

	fullSpec := h.tierSpec
	subSpec := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=040*)")

	supFull, repFull := startLeaf(t, fullSpec, tierSrv.Addr(), h.srv.Addr(), supervisor.ModePoll)
	supSub, repSub := startLeaf(t, subSpec, tierSrv.Addr(), h.srv.Addr(), supervisor.ModePoll)
	supDirect, repDirect := startLeaf(t, fullSpec, h.srv.Addr(), "", supervisor.ModePoll)
	waitSynced(t, supFull)
	waitSynced(t, supSub)
	waitSynced(t, supDirect)

	for round := 0; round < 4; round++ {
		mutate(t, h.store, round)
		time.Sleep(10 * time.Millisecond)
	}

	waitConverged(t, h.store, tier.Replica().Store(), h.tierSpec, 15*time.Second)
	waitConverged(t, h.store, repFull.Store(), fullSpec, 15*time.Second)
	waitConverged(t, h.store, repSub.Store(), subSpec, 15*time.Second)
	waitConverged(t, h.store, repDirect.Store(), fullSpec, 15*time.Second)

	// Leaf-through-mid is indistinguishable from direct attachment: both
	// converged to the same master selection, so their stores agree.
	if ok, why := resync.Converged(repDirect.Store(), repFull.Store(), fullSpec); !ok {
		t.Errorf("tier-attached leaf differs from direct-attached leaf: %s", why)
	}

	if begins := h.backend.Engine.Counters().Snapshot().Begins; begins != 2 {
		// The tier and the direct leaf; the two tier-attached leaves must
		// not have reached the master.
		t.Errorf("master begins = %d, want 2 (tier + direct leaf only)", begins)
	}
	if begins := tier.SyncCounters().Snapshot().Begins; begins != 2 {
		t.Errorf("tier begins = %d, want 2 (both attached leaves)", begins)
	}
	if fb := supFull.Counters().UpstreamFallbacks.Load() + supSub.Counters().UpstreamFallbacks.Load(); fb != 0 {
		t.Errorf("tier-attached leaves diverted %d times, want 0", fb)
	}
	c := tier.Counters().Snapshot()
	if c.UpstreamBatches == 0 || c.UpstreamUpdates == 0 {
		t.Errorf("tier recorded no upstream activity: %+v", c)
	}
	if c.Rebroadcasts == 0 {
		t.Errorf("tier recorded no apply→rebroadcast latency samples")
	}
	if c.TierDepth != 1 {
		t.Errorf("tier depth = %d, want 1", c.TierDepth)
	}
}

// TestRejectionDivertsToFallback: a leaf whose spec the tier cannot prove
// contained must end up synchronized against the fallback master, and a
// later probe of the tier must divert straight back.
func TestRejectionDivertsToFallback(t *testing.T) {
	h := newHarness(t)
	tier, tierSrv := startTier(t, h.tierConfig(t), "ldap://"+h.srv.Addr())

	outside := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=05*)")
	rep, err := replica.NewFilterReplica()
	if err != nil {
		t.Fatal(err)
	}
	sup, err := supervisor.New(supervisor.Config{
		Master:             tierSrv.Addr(),
		Fallback:           h.srv.Addr(),
		RetryUpstreamAfter: 50 * time.Millisecond,
		Spec:               outside,
		PollInterval:       3 * time.Millisecond,
		BackoffBase:        time.Millisecond,
		BackoffMax:         20 * time.Millisecond,
		DialTimeout:        2 * time.Second,
		Seed:               3,
		Logf:               t.Logf,
	}, rep)
	if err != nil {
		t.Fatal(err)
	}
	sup.Start()
	t.Cleanup(func() { _ = sup.Stop() })

	waitSynced(t, sup)
	if got := sup.Target(); got != h.srv.Addr() {
		t.Errorf("leaf target = %s, want fallback master %s", got, h.srv.Addr())
	}
	waitCounter(t, "upstream fallbacks", 10*time.Second,
		func() int64 { return sup.Counters().UpstreamFallbacks.Load() }, 1)
	waitConverged(t, h.store, rep.Store(), outside, 10*time.Second)

	// After the cooldown the supervisor probes the tier again, is rejected
	// again, and diverts back without losing convergence.
	waitCounter(t, "re-probe fallbacks", 10*time.Second,
		func() int64 { return sup.Counters().UpstreamFallbacks.Load() }, 2)
	waitConverged(t, h.store, rep.Store(), outside, 10*time.Second)

	if rejected := tier.Counters().Rejected.Load(); rejected < 1 {
		t.Errorf("tier rejected = %d, want >= 1", rejected)
	}
	if begins := tier.SyncCounters().Snapshot().Begins; begins != 0 {
		t.Errorf("tier engine begins = %d, want 0 (rejected spec must never establish)", begins)
	}
}

// TestTierRestartResumes: a tier with durable state restarts into a
// resume-poll against the master — content from disk, no second Begin, no
// full reload — and downstream service continues from the restored store.
func TestTierRestartResumes(t *testing.T) {
	h := newHarness(t)
	stateDir := t.TempDir()
	cfg := h.tierConfig(t)
	cfg.StateDir = stateDir
	cfg.CheckpointEvery = 5 * time.Millisecond

	tier, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tier.Start()
	waitSynced(t, tier.Supervisors()[0])
	mutate(t, h.store, 0)
	waitConverged(t, h.store, tier.Replica().Store(), h.tierSpec, 10*time.Second)
	if err := tier.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	// Mutate while the tier is down; the restart must pick the delta up
	// with a resume-poll.
	mutate(t, h.store, 1)

	tier2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tier2.Replica().EntryCount() == 0 {
		t.Fatal("restarted tier restored no content")
	}
	if tier2.Counters().Restores.Load() != 1 {
		t.Errorf("restores = %d, want 1", tier2.Counters().Restores.Load())
	}
	tier2.Start()
	t.Cleanup(func() { _ = tier2.Stop() })
	waitConverged(t, h.store, tier2.Replica().Store(), h.tierSpec, 15*time.Second)

	eng := h.backend.Engine.Counters().Snapshot()
	if eng.Begins != 1 {
		t.Errorf("master begins = %d, want 1 (restart must resume)", eng.Begins)
	}
	if eng.FullReloads != 0 {
		t.Errorf("master full reloads = %d, want 0", eng.FullReloads)
	}

	// Downstream service resumes immediately over the restored store.
	sup, rep := startLeaf(t, h.tierSpec, serveTier(t, tier2, h), "", supervisor.ModePoll)
	waitSynced(t, sup)
	waitConverged(t, h.store, rep.Store(), h.tierSpec, 10*time.Second)
}

// serveTier wires an already-built tier to a listener.
func serveTier(t *testing.T, tier *Tier, h *harness) string {
	t.Helper()
	backend := ldapnet.NewCascadeBackend(tier.Replica(), tier, "ldap://"+h.srv.Addr())
	srv, err := ldapnet.Serve("127.0.0.1:0", backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv.Addr()
}

// TestTornCheckpointRecovery simulates a crash mid-journal-append: the
// journal's final record is torn off and the cookie file rolled back to
// the previous checkpoint (the write order during a real crash). The
// restarted tier must repair the journal, restore the surviving content
// and recover the lost record via resume-poll — never a re-Begin.
func TestTornCheckpointRecovery(t *testing.T) {
	h := newHarness(t)
	stateDir := t.TempDir()
	cfg := h.tierConfig(t)
	cfg.StateDir = stateDir
	cfg.CheckpointEvery = time.Hour // manual checkpoints only

	tier, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tier.Start()
	waitSynced(t, tier.Supervisors()[0])
	if err := tier.Checkpoint(); err != nil { // full snapshot
		t.Fatal(err)
	}
	cookiesPath := filepath.Join(stateDir, "cookies.json")
	savedCookies, err := os.ReadFile(cookiesPath)
	if err != nil {
		t.Fatal(err)
	}

	mutate(t, h.store, 0)
	waitConverged(t, h.store, tier.Replica().Store(), h.tierSpec, 10*time.Second)
	if err := tier.Stop(); err != nil { // journal append + newer cookie
		t.Fatal(err)
	}

	// Tear the final journal record and roll the cookie file back, as a
	// crash between the content append and the cookie write would leave it.
	jPath := filepath.Join(stateDir, "store", "journal.ldif")
	raw, err := os.ReadFile(jPath)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.LastIndex(raw, []byte("changetype"))
	if idx < 0 {
		t.Fatal("journal holds no change records to tear")
	}
	if err := os.WriteFile(jPath, raw[:idx+len("changety")], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cookiesPath, savedCookies, 0o644); err != nil {
		t.Fatal(err)
	}

	tier2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart over torn checkpoint: %v", err)
	}
	if tier2.Replica().EntryCount() == 0 {
		t.Fatal("torn recovery restored no content")
	}
	tier2.Start()
	t.Cleanup(func() { _ = tier2.Stop() })
	waitConverged(t, h.store, tier2.Replica().Store(), h.tierSpec, 15*time.Second)

	eng := h.backend.Engine.Counters().Snapshot()
	if eng.Begins != 1 {
		t.Errorf("master begins = %d, want 1 (torn recovery must resume, not re-begin)", eng.Begins)
	}
}

// TestConcurrentUpstreamApplyAndDownstream races upstream applies against
// downstream Begin/Poll, a persist stream and the durability loop; run
// under -race it is the memory-safety acceptance test for the tier.
func TestConcurrentUpstreamApplyAndDownstream(t *testing.T) {
	h := newHarness(t)
	cfg := h.tierConfig(t)
	cfg.StateDir = t.TempDir()
	cfg.CheckpointEvery = 5 * time.Millisecond
	tier, tierSrv := startTier(t, cfg, "ldap://"+h.srv.Addr())
	waitSynced(t, tier.Supervisors()[0])

	supPoll, repPoll := startLeaf(t, h.tierSpec, tierSrv.Addr(), "", supervisor.ModePoll)
	supStream, repStream := startLeaf(t,
		query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=040*)"),
		tierSrv.Addr(), "", supervisor.ModePersist)
	waitSynced(t, supPoll)
	waitSynced(t, supStream)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // upstream churn
		defer wg.Done()
		for round := 0; round < 20; round++ {
			mutate(t, h.store, round)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	go func() { // raw downstream sessions churning against the tier engine
		defer wg.Done()
		for i := 0; i < 20; i++ {
			res, err := tier.SyncBegin(h.tierSpec)
			if err != nil {
				t.Errorf("SyncBegin: %v", err)
				return
			}
			cookie := res.Cookie
			for j := 0; j < 3; j++ {
				pr, err := tier.SyncPoll(cookie)
				if err != nil {
					t.Errorf("SyncPoll: %v", err)
					return
				}
				cookie = pr.Cookie
			}
			if err := tier.SyncEnd(cookie); err != nil {
				t.Errorf("SyncEnd: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	waitConverged(t, h.store, tier.Replica().Store(), h.tierSpec, 15*time.Second)
	waitConverged(t, h.store, repPoll.Store(), h.tierSpec, 15*time.Second)
	waitConverged(t, h.store, repStream.Store(),
		query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=040*)"), 15*time.Second)
}

// TestUpstreamFlapLeavesStayAttached flaps the master↔tier link while two
// leaves stay attached to the tier: the tier resumes by cookie, the leaves
// never divert, and everything converges once the link settles.
func TestUpstreamFlapLeavesStayAttached(t *testing.T) {
	h := newHarness(t)
	tier, tierSrv := startTier(t, h.tierConfig(t), "ldap://"+h.srv.Addr())
	waitSynced(t, tier.Supervisors()[0])

	sup1, rep1 := startLeaf(t, h.tierSpec, tierSrv.Addr(), h.srv.Addr(), supervisor.ModePoll)
	sub := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=040*)")
	sup2, rep2 := startLeaf(t, sub, tierSrv.Addr(), h.srv.Addr(), supervisor.ModePoll)
	waitSynced(t, sup1)
	waitSynced(t, sup2)

	// Flap the upstream link: drop I/O on live connections, refuse fresh
	// dials for a window, and keep mutating through the outage.
	h.inj.SetPlan(chaos.Plan{Seed: 7, DropEveryNOps: 20})
	h.inj.RefuseFor(100 * time.Millisecond)
	for round := 0; round < 6; round++ {
		mutate(t, h.store, round)
		time.Sleep(20 * time.Millisecond)
	}
	waitCounter(t, "tier reconnects", 10*time.Second,
		func() int64 { return tier.Supervisors()[0].Counters().Reconnects.Load() }, 1)
	h.inj.SetPlan(chaos.Plan{})

	mutate(t, h.store, 6)
	waitConverged(t, h.store, tier.Replica().Store(), h.tierSpec, 15*time.Second)
	waitConverged(t, h.store, rep1.Store(), h.tierSpec, 15*time.Second)
	waitConverged(t, h.store, rep2.Store(), sub, 15*time.Second)

	if begins := h.backend.Engine.Counters().Snapshot().Begins; begins != 1 {
		t.Errorf("master begins = %d, want 1 (tier must resume across the flap)", begins)
	}
	if fb := sup1.Counters().UpstreamFallbacks.Load() + sup2.Counters().UpstreamFallbacks.Load(); fb != 0 {
		t.Errorf("leaves diverted %d times during an upstream-only flap, want 0", fb)
	}
}
