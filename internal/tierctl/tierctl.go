// Package tierctl is the demand-driven adaptive control plane for a cascade
// mid-tier: it re-tiers the cascade under shifting traffic by feeding live
// demand signals into the filter selection machinery and applying the
// resulting deltas to the tier's filter set.
//
// Three demand signals drive it:
//
//   - admission rejections — the diverted leaf specs themselves, reported by
//     the tier's admission gate. A leaf the tier turned away (and which is
//     now loading the fallback master) is direct evidence of demand the
//     stored set does not cover; the rejected spec and its generalizations
//     become selection candidates.
//   - per-session serving credit — each active downstream session's spec
//     credits the stored filter covering it every control tick, so filters
//     that hold leaves attached keep their benefit against fresh rejections.
//   - per-content-group update load — the tier engine's broadcast groups
//     report how many update PDUs each group's spec has fanned out; the
//     per-tick delta credits the covering filter, weighting filters whose
//     content is actually changing.
//
// On a generalize/adopt delta the tier widens: a new upstream link pulls
// the widened content (containment-gated at the upstream, resumable chunked
// reload like any other link), and once it is synced the tier bumps its
// filter generation — the signal that fires diverted leaves' filters-changed
// watch, so they re-probe immediately and migrate back off the fallback
// master. On a revolution delta the tier narrows: decayed filters are
// retired, and downstream sessions stranded by the narrowing are gracefully
// ended — their next operation returns e-syncRefreshRequired, which their
// supervisors treat as a referral to the fallback master with a full
// reload, so no update is ever lost.
//
// The operator-configured base specs are pinned: adaptation only ever adds
// to the configuration, and a control plane gone quiet leaves exactly the
// static tier behind.
package tierctl

import (
	"fmt"
	"sync"
	"time"

	"filterdir/internal/cascade"
	"filterdir/internal/containment"
	"filterdir/internal/metrics"
	"filterdir/internal/query"
	"filterdir/internal/selection"
	"filterdir/internal/supervisor"
)

// Config parameterizes a Controller. Tier and Budget are required.
type Config struct {
	// Tier is the cascade mid-tier under control.
	Tier *cascade.Tier
	// Budget bounds the selector's stored set in SizeOf units. With the
	// default SizeOf (1 per filter) it is simply the maximum number of
	// replicated specs, base specs included.
	Budget int
	// Interval is the control loop cadence (default 100ms). Each tick
	// credits live serving activity and runs one evolution/revolution
	// check; rejections are observed inline as they happen.
	Interval time.Duration
	// Rules generalize rejected specs into widening candidates (default
	// selection.DefaultEnterpriseRules).
	Rules []selection.Rule
	// SizeOf estimates a filter's replication size in budget units (default
	//: every filter costs 1). Plug in an entry-count model to budget by
	// content volume instead.
	SizeOf func(query.Query) int
	// AdoptThreshold is the candidate benefit needed to widen into spare
	// budget (default 1.0 — one undecayed rejection).
	AdoptThreshold float64
	// Decay, when in (0,1), overrides the selector's per-observation
	// benefit decay (default 0.95).
	Decay float64
	// Checker proves containment for serving credit and candidate coverage
	// (default: a fresh checker; share the tier's to reuse compiled plans).
	Checker *containment.Checker
	// Counters receives the control plane's metrics (default: a fresh set;
	// read them back via Controller.Counters).
	Counters *metrics.TierCounters
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.Rules == nil {
		c.Rules = selection.DefaultEnterpriseRules()
	}
	if c.SizeOf == nil {
		c.SizeOf = func(query.Query) int { return 1 }
	}
	if c.Checker == nil {
		c.Checker = containment.NewChecker()
	}
	if c.Counters == nil {
		c.Counters = &metrics.TierCounters{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Controller runs the adaptive control loop over one tier.
type Controller struct {
	cfg      Config
	counters *metrics.TierCounters

	// mu serializes the selector (not goroutine-safe) and the rejection
	// bookkeeping between the admission observer and the control loop.
	mu         sync.Mutex
	sel        *selection.EvolutionSelector
	rejected   map[string]query.Query // rejected spec keys not yet admitted
	servedPrev map[string]uint64      // content-group served totals at last tick

	stop      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
}

// New builds a controller; Start arms it.
func New(cfg Config) (*Controller, error) {
	if cfg.Tier == nil {
		return nil, fmt.Errorf("tierctl: tier required")
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("tierctl: positive budget required")
	}
	cfg.fillDefaults()
	sel := selection.NewEvolutionSelector(selection.NewGeneralizer(cfg.Rules...), cfg.SizeOf, cfg.Budget)
	sel.Contains = cfg.Checker.QueryContains
	sel.AdoptThreshold = cfg.AdoptThreshold
	if cfg.Decay > 0 && cfg.Decay < 1 {
		sel.Decay = cfg.Decay
	}
	c := &Controller{
		cfg:        cfg,
		counters:   cfg.Counters,
		sel:        sel,
		rejected:   make(map[string]query.Query),
		servedPrev: make(map[string]uint64),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	return c, nil
}

// Start seeds the selector with the tier's current filter set, pins the
// base specs, hooks the admission gate and launches the control loop
// (idempotent).
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		c.mu.Lock()
		c.sel.SeedStored(c.cfg.Tier.Specs())
		c.sel.Pin(c.cfg.Tier.BaseSpecs())
		c.mu.Unlock()
		c.cfg.Tier.SetAdmissionObserver(c.onAdmit)
		c.updateGauges()
		go c.run()
	})
}

// Stop detaches from the tier and halts the control loop. The tier keeps
// whatever filter set adaptation left it with.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() {
		c.cfg.Tier.SetAdmissionObserver(nil)
		close(c.stop)
	})
	<-c.done
}

// Counters exposes the control plane's metrics.
func (c *Controller) Counters() *metrics.TierCounters { return c.counters }

// StoredSet returns the selector's current stored filter set (tests,
// status).
func (c *Controller) StoredSet() []query.Query {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sel.StoredSet()
}

// onAdmit is the tier's admission observer: rejections feed the selector
// inline (cheap map work under the controller lock), and an admission of a
// spec we previously saw rejected means a diverted leaf has migrated back.
func (c *Controller) onAdmit(q query.Query, admitted bool) {
	key := q.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	if admitted {
		if _, was := c.rejected[key]; was {
			delete(c.rejected, key)
			c.counters.LeavesMigratedBack.Add(1)
		}
		return
	}
	c.rejected[key] = q
	c.sel.ObserveRejection(q)
	c.counters.RejectionsObserved.Add(1)
}

func (c *Controller) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.tick()
		}
	}
}

// tick credits live serving activity into the selector, runs one
// evolution/revolution check and applies the delta to the tier.
func (c *Controller) tick() {
	eng := c.cfg.Tier.Engine()
	c.mu.Lock()
	// Attached-session credit: every active downstream spec backs the
	// stored filter covering it, one benefit unit per tick.
	for _, ss := range eng.SessionSpecs() {
		if c.sel.CreditStored(ss.Spec, 1) {
			c.counters.ServingCredits.Add(1)
		}
	}
	// Content-group load credit: the per-tick delta in update PDUs each
	// broadcast group fanned out, weighted onto the covering filter.
	seen := make(map[string]uint64)
	for _, gl := range eng.GroupLoads() {
		key := gl.Spec.Key()
		seen[key] = gl.Updates
		if d := gl.Updates - c.servedPrev[key]; d > 0 && gl.Updates > c.servedPrev[key] {
			if c.sel.CreditStored(gl.Spec, float64(d)) {
				c.counters.ServingCredits.Add(int64(d))
			}
		}
	}
	c.servedPrev = seen
	delta := c.sel.Evolve()
	c.mu.Unlock()
	if delta != nil {
		c.apply(delta)
	}
	c.updateGauges()
}

// apply widens and narrows the live tier per the selector's delta.
func (c *Controller) apply(d *selection.Delta) {
	t := c.cfg.Tier
	for _, q := range d.Add {
		sup, err := t.AdoptSpec(q)
		if err != nil {
			c.cfg.Logf("tierctl: adopt %s: %v", q.FilterString(), err)
			continue
		}
		if sup == nil {
			continue // already linked
		}
		c.counters.Generalizations.Add(1)
		c.cfg.Logf("tierctl: widening to %s", q.FilterString())
		go c.noteWidened(q, sup)
	}
	if len(d.Remove) > 0 {
		c.counters.Revolutions.Add(1)
	}
	for _, q := range d.Remove {
		kicked, err := t.RetireSpec(q)
		if err != nil {
			c.cfg.Logf("tierctl: retire %s: %v", q.FilterString(), err)
			continue
		}
		c.counters.FiltersRetired.Add(1)
		c.counters.LeavesReferred.Add(int64(kicked))
	}
}

// noteWidened accounts the widening re-sync volume once the adopted spec's
// upstream link has completed its initial synchronization.
func (c *Controller) noteWidened(q query.Query, sup *supervisor.Supervisor) {
	select {
	case <-sup.Synced():
	case <-c.stop:
		return
	}
	sel := q.Normalize()
	sel.Attrs = nil
	entries := c.cfg.Tier.Replica().Store().MatchAll(sel)
	var bytes int64
	for _, e := range entries {
		bytes += int64(e.ByteSize())
	}
	c.counters.WidenResyncEntries.Add(int64(len(entries)))
	c.counters.WidenResyncBytes.Add(bytes)
	c.updateGauges()
}

// updateGauges mirrors the tier's generation and filter count.
func (c *Controller) updateGauges() {
	gen, _ := c.cfg.Tier.FilterGeneration()
	c.counters.FilterGeneration.Store(int64(gen))
	c.counters.StoredFilters.Store(int64(len(c.cfg.Tier.Specs())))
}
