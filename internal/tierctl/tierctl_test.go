package tierctl

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"filterdir/internal/cascade"
	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
	"filterdir/internal/ldapnet"
	"filterdir/internal/query"
	"filterdir/internal/selection"
)

func person(prefix string, i int) *entry.Entry {
	e := entry.New(dn.MustParse(fmt.Sprintf("cn=%s-p%d,o=xyz", prefix, i)))
	e.Put("objectclass", "person").
		Put("cn", fmt.Sprintf("%s-p%d", prefix, i)).Put("sn", "x").
		Put("serialNumber", fmt.Sprintf("%s%02d", prefix, i))
	return e
}

// wire-served master with 04 and 05 serial regions, plus a tier replicating
// only (serialnumber=04*).
func newTier(t *testing.T) (*dit.Store, *cascade.Tier, *ldapnet.Server) {
	t.Helper()
	st, err := dit.NewStore([]string{"o=xyz"}, dit.WithIndexes("serialnumber"))
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := st.Add(person("04", i)); err != nil {
			t.Fatal(err)
		}
		if err := st.Add(person("05", i)); err != nil {
			t.Fatal(err)
		}
	}
	backend := ldapnet.NewStoreBackend(st)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	masterSrv := ldapnet.ServeListener(ln, backend)
	t.Cleanup(func() { _ = masterSrv.Close() })

	tier, err := cascade.New(cascade.Config{
		Upstream:     masterSrv.Addr(),
		Specs:        []query.Query{query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=04*)")},
		PollInterval: 3 * time.Millisecond,
		BackoffBase:  time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		DialTimeout:  2 * time.Second,
		Seed:         11,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	tier.Start()
	t.Cleanup(func() { _ = tier.Stop() })
	return st, tier, masterSrv
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestControllerWidensOnRejections: sustained admission rejections for an
// uncovered region drive the controller to adopt the region's
// generalization into spare budget, after which the once-rejected spec is
// admitted and the rejection is accounted as a migrated-back leaf.
func TestControllerWidensOnRejections(t *testing.T) {
	_, tier, _ := newTier(t)
	ctrl, err := New(Config{Tier: tier, Budget: 2, Interval: 2 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Stop()

	hot := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=0502)")
	if err := tier.Admit(hot); err == nil {
		t.Fatal("tier admitted the hot spec before widening")
	}
	if got := ctrl.Counters().RejectionsObserved.Load(); got < 1 {
		t.Fatalf("rejections observed = %d, want >= 1", got)
	}

	waitFor(t, "widening adoption", 10*time.Second, func() bool {
		return tier.Admit(hot) == nil
	})
	if got := ctrl.Counters().Generalizations.Load(); got < 1 {
		t.Errorf("generalizations = %d, want >= 1", got)
	}
	if got := ctrl.Counters().LeavesMigratedBack.Load(); got < 1 {
		t.Errorf("leaves migrated back = %d, want >= 1", got)
	}
	// The adopted filter is the serial-prefix generalization, not the raw
	// point spec.
	var adopted string
	for _, q := range tier.Specs() {
		if s := q.FilterString(); strings.Contains(s, "05") {
			adopted = s
		}
	}
	if adopted != "(serialnumber=05*)" {
		t.Errorf("adopted filter = %q, want (serialnumber=05*)", adopted)
	}

	waitFor(t, "widening re-sync accounting", 10*time.Second, func() bool {
		return ctrl.Counters().WidenResyncEntries.Load() >= 4
	})
	if got := ctrl.Counters().WidenResyncBytes.Load(); got <= 0 {
		t.Errorf("widen re-sync bytes = %d, want > 0", got)
	}
	if got := ctrl.Counters().StoredFilters.Load(); got != 2 {
		t.Errorf("stored-filters gauge = %d, want 2", got)
	}
}

// TestControllerRespectsBudget: with the budget already consumed by the
// base set, rejections accumulate benefit but never widen the tier — the
// operator's size bound wins over demand.
func TestControllerRespectsBudget(t *testing.T) {
	_, tier, _ := newTier(t)
	ctrl, err := New(Config{Tier: tier, Budget: 1, Interval: 2 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Stop()

	hot := query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=0502)")
	for i := 0; i < 5; i++ {
		if err := tier.Admit(hot); err == nil {
			t.Fatal("budget-full tier admitted the hot spec")
		}
		time.Sleep(4 * time.Millisecond)
	}
	if got := len(tier.Specs()); got != 1 {
		t.Fatalf("budget-full tier widened to %d specs", got)
	}
	if got := ctrl.Counters().Generalizations.Load(); got != 0 {
		t.Errorf("generalizations = %d, want 0", got)
	}
	// The base spec stays pinned: no revolution may trade it away either.
	if got := ctrl.Counters().FiltersRetired.Load(); got != 0 {
		t.Errorf("filters retired = %d, want 0", got)
	}
}

// TestControllerConfigValidation: New rejects a missing tier and a
// non-positive budget; Stop after Start detaches the admission observer.
func TestControllerConfigValidation(t *testing.T) {
	if _, err := New(Config{Budget: 2}); err == nil {
		t.Error("New accepted a nil tier")
	}
	_, tier, _ := newTier(t)
	if _, err := New(Config{Tier: tier}); err == nil {
		t.Error("New accepted a zero budget")
	}
	if _, err := New(Config{Tier: tier, Budget: -3}); err == nil {
		t.Error("New accepted a negative budget")
	}

	ctrl, err := New(Config{Tier: tier, Budget: 2, Interval: 2 * time.Millisecond,
		Rules: []selection.Rule{selection.PrefixRule{Attr: "serialnumber", PrefixLen: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	ctrl.Stop()
	// Detached: new rejections no longer reach the (stopped) controller.
	before := ctrl.Counters().RejectionsObserved.Load()
	_ = tier.Admit(query.MustNew("o=xyz", query.ScopeSubtree, "(serialnumber=0502)"))
	if got := ctrl.Counters().RejectionsObserved.Load(); got != before {
		t.Errorf("stopped controller still observed a rejection: %d -> %d", before, got)
	}
	if got := len(tier.Specs()); got != 1 {
		t.Errorf("stopped controller widened the tier to %d specs", got)
	}
}
