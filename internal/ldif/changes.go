package ldif

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
)

// WriteChanges renders journal changes as LDIF change records (RFC 2849
// changetype syntax): add records carry the full entry, modify records the
// attribute-level changes, delete records the DN, and modrdn records the
// new RDN and superior. This is the interchange form a changelog-style
// consumer would read.
func WriteChanges(w io.Writer, changes ...dit.Change) error {
	bw := bufio.NewWriter(w)
	for i, c := range changes {
		if i > 0 {
			if _, err := bw.WriteString("\n"); err != nil {
				return err
			}
		}
		if err := writeChange(bw, c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeChange(w *bufio.Writer, c dit.Change) error {
	if err := writeLine(w, "dn", c.DN.String()); err != nil {
		return err
	}
	switch c.Type {
	case dit.ChangeAdd:
		if err := writeLine(w, "changetype", "add"); err != nil {
			return err
		}
		if c.After == nil {
			return fmt.Errorf("add change for %q lacks the entry", c.DN.String())
		}
		for _, name := range c.After.AttributeNames() {
			for _, v := range c.After.Values(name) {
				if err := writeLine(w, name, v); err != nil {
					return err
				}
			}
		}
	case dit.ChangeDelete:
		if err := writeLine(w, "changetype", "delete"); err != nil {
			return err
		}
	case dit.ChangeModify:
		if err := writeLine(w, "changetype", "modify"); err != nil {
			return err
		}
		for _, m := range c.Mods {
			var verb string
			switch m.Op {
			case dit.ModAdd:
				verb = "add"
			case dit.ModDelete:
				verb = "delete"
			case dit.ModReplace:
				verb = "replace"
			default:
				return fmt.Errorf("unknown mod op %d", m.Op)
			}
			if err := writeLine(w, verb, m.Attr); err != nil {
				return err
			}
			for _, v := range m.Values {
				if err := writeLine(w, m.Attr, v); err != nil {
					return err
				}
			}
			if _, err := w.WriteString("-\n"); err != nil {
				return err
			}
		}
	case dit.ChangeModifyDN:
		if err := writeLine(w, "changetype", "modrdn"); err != nil {
			return err
		}
		leaf, ok := c.NewDN.Leaf()
		if !ok {
			return fmt.Errorf("modrdn change for %q lacks a new RDN", c.DN.String())
		}
		if err := writeLine(w, "newrdn", leaf.String()); err != nil {
			return err
		}
		if err := writeLine(w, "deleteoldrdn", "1"); err != nil {
			return err
		}
		if parent, ok := c.NewDN.Parent(); ok && !parent.IsRoot() {
			if err := writeLine(w, "newsuperior", parent.String()); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown change type %v", c.Type)
	}
	return nil
}

// ChangeRecord is a parsed LDIF change record.
type ChangeRecord struct {
	Type  dit.ChangeType
	DN    dn.DN
	NewDN dn.DN
	// Attrs holds the added entry's attributes for add records.
	Attrs map[string][]string
	// Mods holds the attribute changes for modify records.
	Mods []dit.Mod
}

// ReadChanges parses LDIF change records.
func ReadChanges(r io.Reader) ([]ChangeRecord, error) {
	recs, torn, err := ReadChangesTail(r)
	if err == nil && torn {
		return recs, fmt.Errorf("%w: truncated final change record", ErrBadRecord)
	}
	return recs, err
}

// ReadChangesTail parses LDIF change records from an append-only journal,
// tolerating a torn final record — the shape a crash mid-append leaves
// behind. Every complete record is returned; torn reports that the last
// record block failed to parse and was dropped. A malformed record with
// further records after it is real corruption and still an error.
func ReadChangesTail(r io.Reader) (recs []ChangeRecord, torn bool, err error) {
	rd := NewReader(r)
	var blocks [][]string
	for {
		lines, err := rd.nextRecordLines()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, false, err
		}
		blocks = append(blocks, lines)
	}
	for i, lines := range blocks {
		rec, err := parseChange(lines)
		if err != nil {
			if i == len(blocks)-1 {
				return recs, true, nil
			}
			return recs, false, err
		}
		recs = append(recs, rec)
	}
	return recs, false, nil
}

// AsChange converts a parsed record back into a journal change sufficient
// for re-serialization with WriteChanges and for store replay. Before
// snapshots (not part of the interchange format) are not recovered.
func (rec ChangeRecord) AsChange() (dit.Change, error) {
	c := dit.Change{Type: rec.Type, DN: rec.DN, NewDN: rec.NewDN, Mods: rec.Mods}
	if rec.Type == dit.ChangeAdd {
		e := entry.New(rec.DN)
		for name, vals := range rec.Attrs {
			e.Put(name, vals...)
		}
		c.After = e
	}
	return c, nil
}

// nextRecordLines exposes the reader's logical-line collection for change
// parsing.
func (r *Reader) nextRecordLines() ([]string, error) {
	var logical []string
	for {
		line, ok := r.nextLine()
		if !ok {
			break
		}
		trimmed := strings.TrimRight(line, "\r")
		if trimmed == "" {
			if len(logical) == 0 {
				continue
			}
			break
		}
		if strings.HasPrefix(trimmed, "#") {
			continue
		}
		if strings.HasPrefix(trimmed, "version:") && len(logical) == 0 {
			continue
		}
		if strings.HasPrefix(trimmed, " ") {
			if len(logical) == 0 {
				return nil, fmt.Errorf("%w: continuation with no preceding line", ErrBadRecord)
			}
			logical[len(logical)-1] += trimmed[1:]
			continue
		}
		logical = append(logical, trimmed)
	}
	if len(logical) == 0 {
		if err := r.sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	return logical, nil
}

func parseChange(lines []string) (ChangeRecord, error) {
	var rec ChangeRecord
	name, value, err := splitLine(lines[0])
	if err != nil {
		return rec, err
	}
	if !strings.EqualFold(name, "dn") {
		return rec, fmt.Errorf("%w: change record must start with dn:", ErrBadRecord)
	}
	if rec.DN, err = dn.Parse(value); err != nil {
		return rec, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	if len(lines) < 2 {
		return rec, fmt.Errorf("%w: missing changetype", ErrBadRecord)
	}
	name, value, err = splitLine(lines[1])
	if err != nil {
		return rec, err
	}
	if !strings.EqualFold(name, "changetype") {
		return rec, fmt.Errorf("%w: expected changetype, got %q", ErrBadRecord, name)
	}
	body := lines[2:]
	switch strings.ToLower(value) {
	case "add":
		rec.Type = dit.ChangeAdd
		rec.Attrs = make(map[string][]string)
		for _, line := range body {
			n, v, err := splitLine(line)
			if err != nil {
				return rec, err
			}
			n = strings.ToLower(n)
			rec.Attrs[n] = append(rec.Attrs[n], v)
		}
	case "delete":
		rec.Type = dit.ChangeDelete
	case "modify":
		rec.Type = dit.ChangeModify
		var cur *dit.Mod
		for _, line := range body {
			if line == "-" {
				if cur != nil {
					rec.Mods = append(rec.Mods, *cur)
					cur = nil
				}
				continue
			}
			n, v, err := splitLine(line)
			if err != nil {
				return rec, err
			}
			if cur == nil {
				var op dit.ModOp
				switch strings.ToLower(n) {
				case "add":
					op = dit.ModAdd
				case "delete":
					op = dit.ModDelete
				case "replace":
					op = dit.ModReplace
				default:
					return rec, fmt.Errorf("%w: unknown mod verb %q", ErrBadRecord, n)
				}
				cur = &dit.Mod{Op: op, Attr: v}
				continue
			}
			cur.Values = append(cur.Values, v)
		}
		if cur != nil {
			rec.Mods = append(rec.Mods, *cur)
		}
	case "modrdn", "moddn":
		rec.Type = dit.ChangeModifyDN
		var newRDN, newSuperior string
		for _, line := range body {
			n, v, err := splitLine(line)
			if err != nil {
				return rec, err
			}
			switch strings.ToLower(n) {
			case "newrdn":
				newRDN = v
			case "newsuperior":
				newSuperior = v
			}
		}
		if newRDN == "" {
			return rec, fmt.Errorf("%w: modrdn without newrdn", ErrBadRecord)
		}
		rdnDN, err := dn.Parse(newRDN)
		if err != nil {
			return rec, fmt.Errorf("%w: newrdn: %v", ErrBadRecord, err)
		}
		leaf, ok := rdnDN.Leaf()
		if !ok {
			return rec, fmt.Errorf("%w: empty newrdn", ErrBadRecord)
		}
		superior, _ := rec.DN.Parent()
		if newSuperior != "" {
			if superior, err = dn.Parse(newSuperior); err != nil {
				return rec, fmt.Errorf("%w: newsuperior: %v", ErrBadRecord, err)
			}
		}
		rec.NewDN = superior.Child(leaf)
	default:
		return rec, fmt.Errorf("%w: unknown changetype %q", ErrBadRecord, value)
	}
	return rec, nil
}
