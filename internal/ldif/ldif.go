// Package ldif reads and writes directory entries in LDIF (RFC 2849
// subset): one record per entry, "attr: value" lines, base64 encoding for
// unsafe values, line folding on write, comments and version lines ignored
// on read.
package ldif

import (
	"bufio"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"strings"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
)

// ErrBadRecord reports a malformed LDIF record.
var ErrBadRecord = errors.New("bad LDIF record")

const foldWidth = 76

// Write renders entries as LDIF records separated by blank lines.
func Write(w io.Writer, entries ...*entry.Entry) error {
	bw := bufio.NewWriter(w)
	for i, e := range entries {
		if i > 0 {
			if _, err := bw.WriteString("\n"); err != nil {
				return err
			}
		}
		if err := writeLine(bw, "dn", e.DN().String()); err != nil {
			return err
		}
		for _, name := range e.AttributeNames() {
			for _, v := range e.Values(name) {
				if err := writeLine(bw, name, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

func writeLine(w *bufio.Writer, name, value string) error {
	var line string
	if safeValue(value) {
		line = name + ": " + value
	} else {
		line = name + ":: " + base64.StdEncoding.EncodeToString([]byte(value))
	}
	for len(line) > foldWidth {
		if _, err := w.WriteString(line[:foldWidth] + "\n"); err != nil {
			return err
		}
		line = " " + line[foldWidth:]
	}
	_, err := w.WriteString(line + "\n")
	return err
}

// safeValue reports whether a value can be written without base64 per
// RFC 2849: printable ASCII, no leading space/colon/less-than, no trailing
// space.
func safeValue(v string) bool {
	if v == "" {
		return true
	}
	if v[0] == ' ' || v[0] == ':' || v[0] == '<' {
		return false
	}
	if v[len(v)-1] == ' ' {
		return false
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c < 0x20 || c > 0x7e {
			return false
		}
	}
	return true
}

// Read parses all LDIF records from r.
func Read(r io.Reader) ([]*entry.Entry, error) {
	var out []*entry.Entry
	rd := NewReader(r)
	for {
		e, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// Reader streams LDIF records one entry at a time.
type Reader struct {
	sc     *bufio.Scanner
	lineNo int
	// pending holds a peeked line that belongs to the next record.
	pending string
	hasPend bool
	done    bool
}

// NewReader wraps r for streaming reads. Lines up to 1 MiB are supported.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &Reader{sc: sc}
}

func (r *Reader) nextLine() (string, bool) {
	if r.hasPend {
		r.hasPend = false
		return r.pending, true
	}
	if r.done {
		return "", false
	}
	if !r.sc.Scan() {
		r.done = true
		return "", false
	}
	r.lineNo++
	return r.sc.Text(), true
}

func (r *Reader) pushBack(line string) {
	r.pending = line
	r.hasPend = true
}

// Next returns the next entry, or io.EOF when the stream is exhausted.
func (r *Reader) Next() (*entry.Entry, error) {
	// Collect logical lines (folding resolved) until a blank line or EOF.
	var logical []string
	for {
		line, ok := r.nextLine()
		if !ok {
			break
		}
		trimmed := strings.TrimRight(line, "\r")
		if trimmed == "" {
			if len(logical) == 0 {
				continue // skip leading blank lines
			}
			break
		}
		if strings.HasPrefix(trimmed, "#") {
			continue
		}
		if strings.HasPrefix(trimmed, "version:") && len(logical) == 0 {
			continue
		}
		if strings.HasPrefix(trimmed, " ") {
			if len(logical) == 0 {
				return nil, fmt.Errorf("%w: continuation at line %d with no preceding line", ErrBadRecord, r.lineNo)
			}
			logical[len(logical)-1] += trimmed[1:]
			continue
		}
		logical = append(logical, trimmed)
	}
	if len(logical) == 0 {
		if err := r.sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	return buildEntry(logical)
}

func buildEntry(lines []string) (*entry.Entry, error) {
	name, value, err := splitLine(lines[0])
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(name, "dn") {
		return nil, fmt.Errorf("%w: record must start with dn:, got %q", ErrBadRecord, lines[0])
	}
	d, err := dn.Parse(value)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	e := entry.New(d)
	for _, line := range lines[1:] {
		name, value, err := splitLine(line)
		if err != nil {
			return nil, err
		}
		e.Add(name, value)
	}
	return e, nil
}

func splitLine(line string) (name, value string, err error) {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return "", "", fmt.Errorf("%w: missing colon in %q", ErrBadRecord, line)
	}
	name = strings.TrimSpace(line[:i])
	rest := line[i+1:]
	if strings.HasPrefix(rest, ":") {
		raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(rest[1:]))
		if err != nil {
			return "", "", fmt.Errorf("%w: bad base64 in %q: %v", ErrBadRecord, line, err)
		}
		return name, string(raw), nil
	}
	return name, strings.TrimLeft(rest, " "), nil
}
