package ldif

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"filterdir/internal/dn"
	"filterdir/internal/entry"
)

func sample() []*entry.Entry {
	e1 := entry.New(dn.MustParse("cn=John Doe,ou=research,c=us,o=xyz"))
	e1.Put("objectclass", "top", "inetOrgPerson")
	e1.Put("cn", "John Doe", "John M Doe")
	e1.Put("sn", "Doe")
	e1.Put("mail", "john@us.xyz.com")
	e2 := entry.New(dn.MustParse("c=us,o=xyz"))
	e2.Put("objectclass", "country")
	e2.Put("c", "us")
	return []*entry.Entry{e1, e2}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sample()
	if err := Write(&buf, in...); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if !in[i].Equal(out[i]) {
			t.Errorf("entry %d mismatch:\n in: %s\nout: %s", i, in[i], out[i])
		}
	}
}

func TestBase64Values(t *testing.T) {
	e := entry.New(dn.MustParse("cn=x,o=xyz"))
	e.Put("objectclass", "person")
	e.Put("description", " leading space")
	e.Put("cn", "x")
	e.Put("sn", "tab\tinside")
	var buf bytes.Buffer
	if err := Write(&buf, e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "description:: ") {
		t.Errorf("unsafe value not base64 encoded:\n%s", buf.String())
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].First("description") != " leading space" {
		t.Errorf("base64 round trip failed: %q", out[0].First("description"))
	}
	if out[0].First("sn") != "tab\tinside" {
		t.Errorf("control char round trip failed: %q", out[0].First("sn"))
	}
}

func TestLineFolding(t *testing.T) {
	e := entry.New(dn.MustParse("cn=x,o=xyz"))
	e.Put("objectclass", "person")
	e.Put("cn", "x")
	e.Put("description", strings.Repeat("abcdefghij", 30)) // 300 chars
	var buf bytes.Buffer
	if err := Write(&buf, e); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 76 {
			t.Errorf("unfolded line of length %d: %q", len(line), line[:40])
		}
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0].First("description"); got != strings.Repeat("abcdefghij", 30) {
		t.Errorf("folded value corrupted, len=%d", len(got))
	}
}

func TestReadSkipsCommentsAndVersion(t *testing.T) {
	src := "version: 1\n# a comment\ndn: cn=x,o=xyz\n# mid comment\ncn: x\nobjectclass: person\n\n"
	out, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].First("cn") != "x" {
		t.Fatalf("unexpected parse result: %v", out)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"cn: x\n\n",                    // no dn line
		"dn: cn=x,o=xyz\nbogus line\n", // missing colon
		" continuation first\n",        // continuation with no prior line
		"dn: cn=x,o=xyz\ncn:: !!!\n",   // bad base64
		"dn: =bad\ncn: x\n",            // invalid DN
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", src)
		}
	}
}

func TestStreamingReader(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()...); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	n := 0
	for {
		_, err := r.Next()
		if err != nil {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("streamed %d entries, want 2", n)
	}
}

func TestQuickValueRoundTrip(t *testing.T) {
	f := func(val string) bool {
		if strings.ContainsAny(val, "\n\r") || len(val) > 500 {
			return true // newlines inside values are not representable in one attr line... base64 handles them
		}
		e := entry.New(dn.MustParse("cn=x,o=xyz"))
		e.Put("objectclass", "person")
		e.Put("cn", "x")
		if val != "" {
			e.Put("description", val)
		}
		var buf bytes.Buffer
		if err := Write(&buf, e); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil || len(out) != 1 {
			return false
		}
		return out[0].Equal(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
