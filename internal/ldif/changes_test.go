package ldif

import (
	"bytes"
	"strings"
	"testing"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
)

// journalChanges produces one change of each type from a live store.
func journalChanges(t *testing.T) []dit.Change {
	t.Helper()
	st, err := dit.NewStore([]string{"o=xyz"})
	if err != nil {
		t.Fatal(err)
	}
	org := entry.New(dn.MustParse("o=xyz"))
	org.Put("objectclass", "organization").Put("o", "xyz")
	if err := st.Add(org); err != nil {
		t.Fatal(err)
	}
	e := entry.New(dn.MustParse("cn=a,o=xyz"))
	e.Put("objectclass", "person").Put("cn", "a").Put("sn", "a")
	if err := st.Add(e); err != nil {
		t.Fatal(err)
	}
	if err := st.Modify(e.DN(), []dit.Mod{
		{Op: dit.ModReplace, Attr: "sn", Values: []string{"b"}},
		{Op: dit.ModAdd, Attr: "mail", Values: []string{"a@x", "b@x"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.ModifyDN(e.DN(), dn.RDN{Attr: "cn", Value: "renamed"}, dn.MustParse("o=xyz")); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(dn.MustParse("cn=renamed,o=xyz")); err != nil {
		t.Fatal(err)
	}
	changes, ok := st.ChangesSince(1) // skip the org add
	if !ok {
		t.Fatal("journal trimmed")
	}
	return changes
}

func TestChangesRoundTrip(t *testing.T) {
	changes := journalChanges(t)
	var buf bytes.Buffer
	if err := WriteChanges(&buf, changes...); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"changetype: add", "changetype: modify", "changetype: modrdn", "changetype: delete", "newrdn: cn=renamed"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	recs, err := ReadChanges(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(changes) {
		t.Fatalf("parsed %d records, want %d", len(recs), len(changes))
	}
	for i, rec := range recs {
		if rec.Type != changes[i].Type {
			t.Errorf("record %d type = %v, want %v", i, rec.Type, changes[i].Type)
		}
		if !rec.DN.Equal(changes[i].DN) {
			t.Errorf("record %d dn = %s, want %s", i, rec.DN, changes[i].DN)
		}
	}
	// The modify record preserves its mods.
	mod := recs[1]
	if len(mod.Mods) != 2 || mod.Mods[0].Op != dit.ModReplace || mod.Mods[0].Attr != "sn" {
		t.Errorf("modify mods = %+v", mod.Mods)
	}
	if len(mod.Mods[1].Values) != 2 {
		t.Errorf("mod add values = %v", mod.Mods[1].Values)
	}
	// The modrdn record reconstructs the new DN.
	if got := recs[2].NewDN.String(); got != "cn=renamed,o=xyz" {
		t.Errorf("modrdn new DN = %s", got)
	}
	// The add record carries the entry's attributes.
	if len(recs[0].Attrs["objectclass"]) == 0 || recs[0].Attrs["sn"][0] != "a" {
		t.Errorf("add attrs = %v", recs[0].Attrs)
	}
}

func TestReadChangesErrors(t *testing.T) {
	cases := []string{
		"dn: cn=a,o=xyz\n\n",                              // missing changetype
		"dn: cn=a,o=xyz\nchangetype: warp\n\n",            // unknown type
		"dn: cn=a,o=xyz\nchangetype: modify\nwarp: sn\n-", // unknown verb
		"dn: cn=a,o=xyz\nchangetype: modrdn\n\n",          // missing newrdn
		"changetype: add\n\n",                             // missing dn
	}
	for _, src := range cases {
		if _, err := ReadChanges(strings.NewReader(src)); err == nil {
			t.Errorf("ReadChanges(%q) succeeded", src)
		}
	}
}
