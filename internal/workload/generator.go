package workload

import (
	"fmt"
	"math/rand"

	"filterdir/internal/query"
)

// QueryKind labels the four query prototypes of Table 1.
type QueryKind int

// Query prototypes of the enterprise workload.
const (
	KindSerial QueryKind = iota + 1
	KindMail
	KindDept
	KindLocation
)

func (k QueryKind) String() string {
	switch k {
	case KindSerial:
		return "(serialNumber=_)"
	case KindMail:
		return "(mail=_)"
	case KindDept:
		return "(&(dept=_)(div=_))"
	case KindLocation:
		return "(location=_)"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Mix is the query-type distribution of Table 1.
type Mix struct {
	Serial, Mail, Dept, Location float64
}

// Table1Mix is the measured two-day workload distribution.
var Table1Mix = Mix{Serial: 0.58, Mail: 0.24, Dept: 0.16, Location: 0.02}

// TraceConfig parameterizes the query trace.
type TraceConfig struct {
	Seed int64
	Mix  Mix
	// LocalFraction is the probability a people query targets the first
	// (local) geography; the case study serves a geography holding ≈30 % of
	// employees whose users mostly look up local colleagues.
	LocalFraction float64
	// BlockZipfS / BlockZipfV shape the Zipf skew across serial blocks
	// within a country (access to entries in a country is not uniform).
	BlockZipfS float64
	BlockZipfV float64
	// DeptZipfS shapes the skew across departments and divisions.
	DeptZipfS float64
	// TemporalRepeat is the probability a query repeats one of the last
	// RecentWindow queries verbatim (temporal locality for the user-query
	// cache of Figures 8 and 9).
	TemporalRepeat float64
	RecentWindow   int
	// UniformFraction is the probability a people query targets a uniformly
	// random employee anywhere — unorganized one-off accesses that no
	// generalized filter captures (they cap the generalized-only curves of
	// Figures 4 and 8, as in the real trace).
	UniformFraction float64
	// NullBaseFraction is the probability a people query uses the null base
	// (minimally directory-enabled applications, Section 3.1.1); the rest
	// scope the search to the target's country subtree.
	NullBaseFraction float64
	// LocalCountry is the country index "local" people lookups target
	// (default 0, the first configured country).
	LocalCountry int
	// Phases, when set, re-weight the trace mid-run — the traffic shifts
	// the adaptive tiering experiments drive. Entries must be ordered by
	// AfterOps.
	Phases []Phase
}

// Phase is one mid-trace regime change: it takes effect once the generator
// has produced AfterOps queries.
type Phase struct {
	// AfterOps is the query count at which this phase takes effect.
	AfterOps int
	// LocalCountry redirects local people lookups to this country index.
	LocalCountry int
	// LocalFraction, when > 0, replaces the geography-locality probability.
	LocalFraction float64
	// Mix, when non-nil, replaces the query-type mix.
	Mix *Mix
	// ReshuffleSeed, when non-zero, re-randomizes the block/department
	// popularity rankings at phase entry (access-pattern drift on top of
	// the geography shift).
	ReshuffleSeed int64
}

// DefaultTraceConfig mirrors the case-study access pattern.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Seed:           7,
		Mix:            Table1Mix,
		LocalFraction:  0.85,
		BlockZipfS:     1.4,
		BlockZipfV:     1.0,
		DeptZipfS:      1.5,
		TemporalRepeat: 0.2,
		RecentWindow:   50,
		// A quarter of people lookups are unorganized one-offs.
		UniformFraction: 0.25,
		// Half the applications know the regional subtree; the rest search
		// from the root.
		NullBaseFraction: 0.5,
	}
}

// TraceQuery is one generated request with its prototype label.
type TraceQuery struct {
	Kind  QueryKind
	Query query.Query
}

// Generator produces a deterministic query trace against a built directory.
type Generator struct {
	dir *Directory
	cfg TraceConfig
	r   *rand.Rand

	blockZipf map[int]*rand.Zipf // per country
	blockPerm map[int][]int      // popularity rank -> block id
	deptZipf  []*rand.Zipf       // per division
	deptPerm  [][]int
	divZipf   *rand.Zipf
	divPerm   []int

	recent []TraceQuery

	ops       int // queries produced, drives phase transitions
	nextPhase int
}

// NewGenerator builds a generator over the directory.
func NewGenerator(dir *Directory, cfg TraceConfig) *Generator {
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{
		dir:       dir,
		cfg:       cfg,
		r:         r,
		blockZipf: make(map[int]*rand.Zipf),
		blockPerm: make(map[int][]int),
	}
	for ci := range dir.Config.Countries {
		blocks := len(dir.ByCountryBlock[ci])
		if blocks == 0 {
			continue
		}
		g.blockZipf[ci] = rand.NewZipf(r, cfg.BlockZipfS, cfg.BlockZipfV, uint64(blocks-1))
		g.blockPerm[ci] = r.Perm(blocks)
	}
	if n := len(dir.Divisions); n > 0 {
		g.divZipf = rand.NewZipf(r, cfg.DeptZipfS, 1.0, uint64(n-1))
		g.divPerm = r.Perm(n)
		g.deptZipf = make([]*rand.Zipf, n)
		g.deptPerm = make([][]int, n)
		for di := 0; di < n; di++ {
			m := len(dir.ByDivision[di])
			if m == 0 {
				continue
			}
			g.deptZipf[di] = rand.NewZipf(r, cfg.DeptZipfS, 1.0, uint64(m-1))
			g.deptPerm[di] = r.Perm(m)
		}
	}
	return g
}

// advancePhase applies any phase whose AfterOps threshold the trace has
// reached, then counts the query about to be produced.
func (g *Generator) advancePhase() {
	for g.nextPhase < len(g.cfg.Phases) && g.ops >= g.cfg.Phases[g.nextPhase].AfterOps {
		ph := g.cfg.Phases[g.nextPhase]
		g.nextPhase++
		g.cfg.LocalCountry = ph.LocalCountry
		if ph.LocalFraction > 0 {
			g.cfg.LocalFraction = ph.LocalFraction
		}
		if ph.Mix != nil {
			g.cfg.Mix = *ph.Mix
		}
		if ph.ReshuffleSeed != 0 {
			g.Reshuffle(ph.ReshuffleSeed)
		}
	}
	g.ops++
}

// PhaseIndex reports how many phase transitions have been applied (0 = the
// base configuration is still in effect).
func (g *Generator) PhaseIndex() int { return g.nextPhase }

// Next produces the next trace query.
func (g *Generator) Next() TraceQuery {
	g.advancePhase()
	if len(g.recent) > 0 && g.r.Float64() < g.cfg.TemporalRepeat {
		tq := g.recent[g.r.Intn(len(g.recent))]
		g.remember(tq)
		return tq
	}
	var tq TraceQuery
	p := g.r.Float64()
	switch {
	case p < g.cfg.Mix.Serial:
		tq = g.serialQuery()
	case p < g.cfg.Mix.Serial+g.cfg.Mix.Mail:
		tq = g.mailQuery()
	case p < g.cfg.Mix.Serial+g.cfg.Mix.Mail+g.cfg.Mix.Dept:
		tq = g.deptQuery()
	default:
		tq = g.locationQuery()
	}
	g.remember(tq)
	return tq
}

// NextOfKind produces a query of one prototype, bypassing the mix (used by
// the single-query-type experiments).
func (g *Generator) NextOfKind(k QueryKind) TraceQuery {
	g.advancePhase()
	if len(g.recent) > 0 && g.r.Float64() < g.cfg.TemporalRepeat {
		// Repeat only matching-kind queries to keep the experiment pure.
		for attempt := 0; attempt < 4; attempt++ {
			tq := g.recent[g.r.Intn(len(g.recent))]
			if tq.Kind == k {
				g.remember(tq)
				return tq
			}
		}
	}
	var tq TraceQuery
	switch k {
	case KindSerial:
		tq = g.serialQuery()
	case KindMail:
		tq = g.mailQuery()
	case KindDept:
		tq = g.deptQuery()
	default:
		tq = g.locationQuery()
	}
	g.remember(tq)
	return tq
}

func (g *Generator) remember(tq TraceQuery) {
	if g.cfg.RecentWindow <= 0 {
		return
	}
	g.recent = append(g.recent, tq)
	if len(g.recent) > g.cfg.RecentWindow {
		g.recent = g.recent[1:]
	}
}

// pickEmployee selects an employee with geography and block skew; a
// UniformFraction of lookups target anyone, uniformly.
func (g *Generator) pickEmployee() *Employee {
	if g.r.Float64() < g.cfg.UniformFraction && len(g.dir.Employees) > 0 {
		emp := &g.dir.Employees[g.r.Intn(len(g.dir.Employees))]
		if _, ok := g.dir.Master.Get(emp.DN); ok {
			return emp
		}
	}
	ci := g.cfg.LocalCountry
	if ci < 0 || ci >= len(g.dir.Config.Countries) {
		ci = 0
	}
	if g.r.Float64() >= g.cfg.LocalFraction {
		// Remote lookup: uniform over the other countries.
		if n := len(g.dir.Config.Countries); n > 1 {
			o := g.r.Intn(n - 1)
			if o >= ci {
				o++
			}
			ci = o
		}
	}
	blocks := g.dir.ByCountryBlock[ci]
	if len(blocks) == 0 {
		return nil
	}
	rank := int(g.blockZipf[ci].Uint64())
	block := g.blockPerm[ci][rank]
	ids := blocks[block]
	if len(ids) == 0 {
		return nil
	}
	return &g.dir.Employees[ids[g.r.Intn(len(ids))]]
}

func (g *Generator) serialQuery() TraceQuery {
	emp := g.pickEmployee()
	if emp == nil {
		return g.locationQuery()
	}
	q := query.MustNew(g.peopleBase(emp), query.ScopeSubtree, fmt.Sprintf("(serialNumber=%s)", emp.Serial))
	return TraceQuery{Kind: KindSerial, Query: q}
}

func (g *Generator) mailQuery() TraceQuery {
	emp := g.pickEmployee()
	if emp == nil {
		return g.locationQuery()
	}
	q := query.MustNew(g.peopleBase(emp), query.ScopeSubtree, fmt.Sprintf("(mail=%s)", emp.Mail))
	return TraceQuery{Kind: KindMail, Query: q}
}

// peopleBase picks the search base for a people query: null for minimally
// directory-enabled applications, the target's country subtree otherwise.
func (g *Generator) peopleBase(emp *Employee) string {
	if g.r.Float64() < g.cfg.NullBaseFraction {
		return ""
	}
	return fmt.Sprintf("c=%s,%s", g.dir.Config.Countries[emp.Country].Code, Suffix)
}

func (g *Generator) deptQuery() TraceQuery {
	if g.divZipf == nil {
		return g.locationQuery()
	}
	di := g.divPerm[int(g.divZipf.Uint64())]
	ids := g.dir.ByDivision[di]
	if len(ids) == 0 || g.deptZipf[di] == nil {
		return g.locationQuery()
	}
	dept := g.dir.Departments[ids[g.deptPerm[di][int(g.deptZipf[di].Uint64())]]]
	base := ""
	if g.r.Float64() >= g.cfg.NullBaseFraction {
		base = fmt.Sprintf("ou=%s,ou=divisions,%s", dept.Division, Suffix)
	}
	q := query.MustNew(base, query.ScopeSubtree,
		fmt.Sprintf("(&(dept=%s)(div=%s))", dept.Dept, dept.Division))
	return TraceQuery{Kind: KindDept, Query: q}
}

func (g *Generator) locationQuery() TraceQuery {
	name := "site000"
	if len(g.dir.Locations) > 0 {
		name = g.dir.Locations[g.r.Intn(len(g.dir.Locations))]
	}
	q := query.MustNew("", query.ScopeSubtree, fmt.Sprintf("(location=%s)", name))
	return TraceQuery{Kind: KindLocation, Query: q}
}

// Reshuffle re-randomizes the popularity rankings (which blocks, divisions
// and departments are hot) from a new seed, deterministically. Experiments
// use it to model access-pattern drift, which is what dynamic filter
// selection (Section 6.2) adapts to.
func (g *Generator) Reshuffle(seed int64) {
	r := rand.New(rand.NewSource(seed))
	for ci := range g.dir.Config.Countries {
		if blocks := len(g.dir.ByCountryBlock[ci]); blocks > 0 {
			g.blockPerm[ci] = r.Perm(blocks)
		}
	}
	if n := len(g.dir.Divisions); n > 0 {
		g.divPerm = r.Perm(n)
		for di := 0; di < n; di++ {
			if m := len(g.dir.ByDivision[di]); m > 0 {
				g.deptPerm[di] = r.Perm(m)
			}
		}
	}
	g.recent = nil
}

// MixCounts tallies the prototype distribution of a trace (Table 1).
func MixCounts(trace []TraceQuery) map[QueryKind]int {
	out := make(map[QueryKind]int)
	for _, tq := range trace {
		out[tq.Kind]++
	}
	return out
}
