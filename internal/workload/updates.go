package workload

import (
	"fmt"
	"math/rand"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
)

// UpdateConfig parameterizes the master-side update stream. Fractions must
// sum to at most 1; the remainder is padded with modifies. Department
// entries have a very low update rate in the enterprise directory
// (Section 7.3), so updates target employees unless DeptModifyFraction is
// set.
type UpdateConfig struct {
	Seed           int64
	ModifyFraction float64 // attribute modify on a random employee
	AddFraction    float64 // hire: new employee entry
	DeleteFraction float64 // departure: delete an employee
	RenameFraction float64 // modifyDN within the country
	// DeptModifyFraction directs a share of updates at department entries.
	DeptModifyFraction float64
}

// DefaultUpdateConfig mirrors a read-mostly people directory.
func DefaultUpdateConfig() UpdateConfig {
	return UpdateConfig{
		Seed:           11,
		ModifyFraction: 0.70,
		AddFraction:    0.12,
		DeleteFraction: 0.12,
		RenameFraction: 0.05,
		// Department data barely changes.
		DeptModifyFraction: 0.01,
	}
}

// Updater drives updates against the master, maintaining the directory
// bookkeeping so the query generator keeps drawing live targets.
type Updater struct {
	dir *Directory
	cfg UpdateConfig
	r   *rand.Rand
	seq int
	// live tracks which employee indexes still exist.
	live []int
}

// NewUpdater builds an updater over the directory.
func NewUpdater(dir *Directory, cfg UpdateConfig) *Updater {
	u := &Updater{dir: dir, cfg: cfg, r: rand.New(rand.NewSource(cfg.Seed))}
	u.live = make([]int, len(dir.Employees))
	for i := range u.live {
		u.live[i] = i
	}
	return u
}

// Apply performs n updates against the master store. It reports the number
// actually applied (skips when a random target vanished).
func (u *Updater) Apply(n int) (int, error) {
	applied := 0
	for i := 0; i < n; i++ {
		ok, err := u.one()
		if err != nil {
			return applied, err
		}
		if ok {
			applied++
		}
	}
	return applied, nil
}

func (u *Updater) one() (bool, error) {
	p := u.r.Float64()
	switch {
	case p < u.cfg.DeptModifyFraction:
		return u.modifyDept()
	case p < u.cfg.DeptModifyFraction+u.cfg.AddFraction:
		return u.addEmployee()
	case p < u.cfg.DeptModifyFraction+u.cfg.AddFraction+u.cfg.DeleteFraction:
		return u.deleteEmployee()
	case p < u.cfg.DeptModifyFraction+u.cfg.AddFraction+u.cfg.DeleteFraction+u.cfg.RenameFraction:
		return u.renameEmployee()
	default:
		return u.modifyEmployee()
	}
}

func (u *Updater) pickLive() (int, *Employee, bool) {
	for attempts := 0; attempts < 8 && len(u.live) > 0; attempts++ {
		pos := u.r.Intn(len(u.live))
		idx := u.live[pos]
		emp := &u.dir.Employees[idx]
		if _, ok := u.dir.Master.Get(emp.DN); ok {
			return pos, emp, true
		}
		// Lazily drop stale references.
		u.live = append(u.live[:pos], u.live[pos+1:]...)
	}
	return 0, nil, false
}

func (u *Updater) modifyEmployee() (bool, error) {
	_, emp, ok := u.pickLive()
	if !ok {
		return false, nil
	}
	u.seq++
	err := u.dir.Master.Modify(emp.DN, []dit.Mod{{
		Op: dit.ModReplace, Attr: "telephoneNumber",
		Values: []string{fmt.Sprintf("%03d-%04d", u.seq%1000, u.r.Intn(10000))},
	}})
	if err != nil {
		return false, fmt.Errorf("modify %q: %w", emp.DN.String(), err)
	}
	return true, nil
}

func (u *Updater) modifyDept() (bool, error) {
	if len(u.dir.Departments) == 0 {
		return false, nil
	}
	dep := u.dir.Departments[u.r.Intn(len(u.dir.Departments))]
	u.seq++
	err := u.dir.Master.Modify(dep.DN, []dit.Mod{{
		Op: dit.ModReplace, Attr: "description",
		Values: []string{fmt.Sprintf("department %s rev %d", dep.Dept, u.seq)},
	}})
	if err != nil {
		return false, fmt.Errorf("modify dept %q: %w", dep.DN.String(), err)
	}
	return true, nil
}

func (u *Updater) addEmployee() (bool, error) {
	ci := u.r.Intn(len(u.dir.Config.Countries))
	blocks := len(u.dir.ByCountryBlock[ci])
	if blocks == 0 {
		return false, nil
	}
	block := u.r.Intn(blocks)
	u.seq++
	serial := fmt.Sprintf("%02d%03d9%03d", ci+10, block, u.seq%1000)
	cc := u.dir.Config.Countries[ci].Code
	uid := fmt.Sprintf("n%08x", u.r.Uint32())
	cn := fmt.Sprintf("new %s %d", cc, u.seq)
	countryDN := dn.MustParse(fmt.Sprintf("c=%s,%s", cc, Suffix))
	e := entry.New(countryDN.Child(dn.RDN{Attr: "cn", Value: cn}))
	e.Put("objectclass", "top", "person", "organizationalPerson", "inetOrgPerson")
	e.Put("cn", cn).Put("sn", fmt.Sprintf("sn%d", u.seq))
	e.Put("serialNumber", serial).Put("uid", uid)
	e.Put("mail", fmt.Sprintf("%s@%s.xyz.com", uid, cc))
	if err := u.dir.Master.Add(e); err != nil {
		return false, fmt.Errorf("add employee: %w", err)
	}
	idx := len(u.dir.Employees)
	u.dir.Employees = append(u.dir.Employees, Employee{
		DN: e.DN(), Serial: serial, Mail: e.First("mail"), Country: ci, Block: block,
	})
	u.dir.ByCountryBlock[ci][block] = append(u.dir.ByCountryBlock[ci][block], idx)
	u.live = append(u.live, idx)
	return true, nil
}

func (u *Updater) deleteEmployee() (bool, error) {
	pos, emp, ok := u.pickLive()
	if !ok {
		return false, nil
	}
	if err := u.dir.Master.Delete(emp.DN); err != nil {
		return false, fmt.Errorf("delete %q: %w", emp.DN.String(), err)
	}
	u.live = append(u.live[:pos], u.live[pos+1:]...)
	return true, nil
}

func (u *Updater) renameEmployee() (bool, error) {
	_, emp, ok := u.pickLive()
	if !ok {
		return false, nil
	}
	u.seq++
	parent, _ := emp.DN.Parent()
	newRDN := dn.RDN{Attr: "cn", Value: fmt.Sprintf("renamed %d", u.seq)}
	if err := u.dir.Master.ModifyDN(emp.DN, newRDN, parent); err != nil {
		return false, fmt.Errorf("rename %q: %w", emp.DN.String(), err)
	}
	emp.DN = parent.Child(newRDN)
	return true, nil
}
