package workload

import (
	"math"
	"testing"

	"filterdir/internal/query"
)

func smallDir(t testing.TB, employees int) *Directory {
	t.Helper()
	cfg := DefaultDirectoryConfig(employees)
	cfg.PayloadBytes = 64
	d, err := BuildDirectory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildDirectoryStructure(t *testing.T) {
	d := smallDir(t, 1000)
	if d.EmployeeCount < 990 || d.EmployeeCount > 1000 {
		t.Errorf("EmployeeCount = %d", d.EmployeeCount)
	}
	// Target geography ≈ 30 %.
	target := d.Config.Countries[0].Employees
	frac := float64(target) / float64(d.EmployeeCount)
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("target geography fraction = %v", frac)
	}
	// Employees are flat children of the country entry.
	q := query.MustNew("c=us,"+Suffix, query.ScopeSingleLevel, "(objectclass=inetorgperson)")
	res, err := d.Master.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != target {
		t.Errorf("flat children = %d, want %d", len(res.Entries), target)
	}
	// Departments under divisions.
	nd := len(d.Master.MatchAll(query.MustNew("", query.ScopeSubtree, "(objectclass=department)")))
	if nd != d.Config.Divisions*d.Config.DeptsPerDivision {
		t.Errorf("departments = %d", nd)
	}
	// Locations present.
	nl := len(d.Master.MatchAll(query.MustNew("", query.ScopeSubtree, "(objectclass=location)")))
	if nl != d.Config.Locations {
		t.Errorf("locations = %d", nl)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := smallDir(t, 300)
	b := smallDir(t, 300)
	if a.Employees[17].Serial != b.Employees[17].Serial || a.Employees[17].Mail != b.Employees[17].Mail {
		t.Error("directory build not deterministic")
	}
}

func TestSerialStructured(t *testing.T) {
	d := smallDir(t, 500)
	emp := d.Employees[0]
	prefix := d.SerialPrefix(emp.Country, emp.Block)
	if emp.Serial[:SerialPrefixLen] != prefix {
		t.Errorf("serial %q does not start with block prefix %q", emp.Serial, prefix)
	}
	// All employees of one block share the prefix.
	for _, idx := range d.ByCountryBlock[0][0] {
		if d.Employees[idx].Serial[:SerialPrefixLen] != d.SerialPrefix(0, 0) {
			t.Errorf("block member %q lacks prefix", d.Employees[idx].Serial)
		}
	}
}

func TestTraceMixMatchesTable1(t *testing.T) {
	d := smallDir(t, 800)
	cfg := DefaultTraceConfig()
	cfg.TemporalRepeat = 0 // pure mix
	g := NewGenerator(d, cfg)
	const n = 20000
	trace := make([]TraceQuery, n)
	for i := range trace {
		trace[i] = g.Next()
	}
	counts := MixCounts(trace)
	check := func(kind QueryKind, want float64) {
		got := float64(counts[kind]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v fraction = %.3f, want %.2f±0.02", kind, got, want)
		}
	}
	check(KindSerial, 0.58)
	check(KindMail, 0.24)
	check(KindDept, 0.16)
	check(KindLocation, 0.02)
}

func TestTraceQueriesAnswerable(t *testing.T) {
	d := smallDir(t, 500)
	g := NewGenerator(d, DefaultTraceConfig())
	for i := 0; i < 500; i++ {
		tq := g.Next()
		got := d.Master.MatchAll(tq.Query)
		if tq.Kind != KindDept && len(got) == 0 {
			t.Fatalf("query %s matched nothing", tq.Query)
		}
		if tq.Kind == KindSerial && len(got) != 1 {
			t.Fatalf("serial query %s matched %d entries", tq.Query, len(got))
		}
	}
}

func TestTraceSkewAndLocality(t *testing.T) {
	d := smallDir(t, 2000)
	cfg := DefaultTraceConfig()
	cfg.TemporalRepeat = 0
	g := NewGenerator(d, cfg)
	local, total := 0, 0
	blockHits := make(map[string]int)
	for i := 0; i < 8000; i++ {
		tq := g.NextOfKind(KindSerial)
		serial := tq.Query.Filter.SlotValues()[0]
		total++
		if serial[:2] == "10" { // first country code
			local++
		}
		blockHits[serial[:SerialPrefixLen]]++
	}
	frac := float64(local) / float64(total)
	// Expected: UniformFraction lands ~30% locally, the rest follows
	// LocalFraction: 0.25*0.3 + 0.75*0.85 ≈ 0.71.
	if frac < 0.64 || frac > 0.78 {
		t.Errorf("local fraction = %v, want ≈0.71", frac)
	}
	// Skew: the top 10% of blocks should carry well over half the accesses.
	var counts []int
	for _, c := range blockHits {
		counts = append(counts, c)
	}
	top := 0
	for i := 0; i < len(counts); i++ {
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[i] {
				counts[i], counts[j] = counts[j], counts[i]
			}
		}
	}
	take := len(counts) / 10
	if take == 0 {
		take = 1
	}
	for i := 0; i < take; i++ {
		top += counts[i]
	}
	if float64(top)/float64(total) < 0.5 {
		t.Errorf("top-decile block share = %v, want skewed (>0.5)", float64(top)/float64(total))
	}
}

func TestTemporalRepeat(t *testing.T) {
	d := smallDir(t, 500)
	cfg := DefaultTraceConfig()
	cfg.TemporalRepeat = 0.5
	g := NewGenerator(d, cfg)
	seen := make(map[string]bool)
	repeats := 0
	const n = 4000
	for i := 0; i < n; i++ {
		tq := g.Next()
		k := tq.Query.Key()
		if seen[k] {
			repeats++
		}
		seen[k] = true
	}
	if float64(repeats)/n < 0.3 {
		t.Errorf("repeat fraction = %v, want ≥0.3 with TemporalRepeat=0.5", float64(repeats)/n)
	}
}

func TestUpdaterAppliesStream(t *testing.T) {
	d := smallDir(t, 400)
	before := d.Master.Len()
	beforeCSN := d.Master.LastCSN()
	u := NewUpdater(d, DefaultUpdateConfig())
	applied, err := u.Apply(200)
	if err != nil {
		t.Fatal(err)
	}
	if applied < 190 {
		t.Errorf("applied = %d of 200", applied)
	}
	if d.Master.LastCSN() == beforeCSN {
		t.Error("no changes journaled")
	}
	// Adds and deletes roughly balance; the store should not be wildly off.
	after := d.Master.Len()
	if after < before-100 || after > before+100 {
		t.Errorf("store size swung from %d to %d", before, after)
	}
	// Queries keep working after updates.
	g := NewGenerator(d, DefaultTraceConfig())
	for i := 0; i < 100; i++ {
		tq := g.Next()
		d.Master.MatchAll(tq.Query)
	}
}

func TestUpdaterDeterministic(t *testing.T) {
	d1 := smallDir(t, 300)
	d2 := smallDir(t, 300)
	u1 := NewUpdater(d1, DefaultUpdateConfig())
	u2 := NewUpdater(d2, DefaultUpdateConfig())
	if _, err := u1.Apply(100); err != nil {
		t.Fatal(err)
	}
	if _, err := u2.Apply(100); err != nil {
		t.Fatal(err)
	}
	if d1.Master.LastCSN() != d2.Master.LastCSN() {
		t.Errorf("CSNs diverge: %d vs %d", d1.Master.LastCSN(), d2.Master.LastCSN())
	}
	if d1.Master.Len() != d2.Master.Len() {
		t.Errorf("sizes diverge: %d vs %d", d1.Master.Len(), d2.Master.Len())
	}
}

func TestEntryPayloadSize(t *testing.T) {
	cfg := DefaultDirectoryConfig(100)
	cfg.PayloadBytes = 2048
	d, err := BuildDirectory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := d.Master.Get(d.Employees[0].DN)
	if !ok {
		t.Fatal("employee missing")
	}
	if e.ByteSize() < 2048 {
		t.Errorf("entry size = %d, want ≥ payload", e.ByteSize())
	}
}
