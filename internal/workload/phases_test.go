package workload

import (
	"strings"
	"testing"
)

// phasedConfig is a trace that shifts its geography from country 0 to
// country 1 after 400 queries — the traffic shift the adaptive tiering
// experiments drive.
func phasedConfig() TraceConfig {
	cfg := DefaultTraceConfig()
	cfg.Seed = 21
	cfg.TemporalRepeat = 0 // no verbatim repeats: every query samples the live regime
	cfg.UniformFraction = 0
	cfg.LocalFraction = 0.95
	cfg.Phases = []Phase{
		{AfterOps: 400, LocalCountry: 1, LocalFraction: 0.95, ReshuffleSeed: 5},
	}
	return cfg
}

// serialCountry maps a serial-prototype query back to the country of the
// employee it targets.
func serialCountry(t *testing.T, d *Directory, tq TraceQuery) int {
	t.Helper()
	f := tq.Query.FilterString()
	serial := strings.TrimSuffix(strings.TrimPrefix(f, "(serialnumber="), ")")
	for i := range d.Employees {
		if d.Employees[i].Serial == serial {
			return d.Employees[i].Country
		}
	}
	t.Fatalf("no employee with serial %q (filter %s)", serial, f)
	return -1
}

// TestPhaseShiftsGeography: before the phase boundary the trace targets the
// configured local geography; after it, the redirected one. PhaseIndex
// tracks the transition exactly at the threshold.
func TestPhaseShiftsGeography(t *testing.T) {
	d := smallDir(t, 600)
	g := NewGenerator(d, phasedConfig())

	count := func(n int) map[int]int {
		hits := make(map[int]int)
		for i := 0; i < n; i++ {
			hits[serialCountry(t, d, g.NextOfKind(KindSerial))]++
		}
		return hits
	}

	before := count(400)
	// The phase takes effect once AfterOps queries exist — i.e. on the 401st.
	if got := g.PhaseIndex(); got != 0 {
		t.Fatalf("PhaseIndex after exactly 400 ops = %d, want 0", got)
	}
	after := count(400)
	if got := g.PhaseIndex(); got != 1 {
		t.Fatalf("PhaseIndex after 800 ops = %d, want 1", got)
	}

	if b0 := before[0]; b0 < 300 {
		t.Errorf("pre-shift trace hit country 0 only %d/400 times", b0)
	}
	if a1 := after[1]; a1 < 300 {
		t.Errorf("post-shift trace hit country 1 only %d/400 times", a1)
	}
	if after[0] >= after[1] {
		t.Errorf("post-shift trace still favors country 0: %v", after)
	}
}

// TestPhaseReplacesMix: a phase carrying a Mix pointer re-weights the
// query-type distribution mid-trace.
func TestPhaseReplacesMix(t *testing.T) {
	d := smallDir(t, 600)
	cfg := phasedConfig()
	deptOnly := Mix{Dept: 1.0}
	cfg.Phases = []Phase{{AfterOps: 300, Mix: &deptOnly}}
	g := NewGenerator(d, cfg)

	var trace []TraceQuery
	for i := 0; i < 600; i++ {
		trace = append(trace, g.Next())
	}
	preDept := MixCounts(trace[:300])[KindDept]
	if preDept > 100 {
		t.Errorf("pre-phase dept share %d/300, want the Table-1 minority", preDept)
	}
	postDept := MixCounts(trace[300:])[KindDept]
	if postDept != 300 {
		t.Errorf("post-phase dept share %d/300, want all 300 (Mix replaced)", postDept)
	}
}

// TestPhasedTraceDeterministic: the phased trace — transitions, reshuffle
// and all — replays identically for the same seed, and differs for another.
func TestPhasedTraceDeterministic(t *testing.T) {
	d := smallDir(t, 600)
	keys := func(cfg TraceConfig) []string {
		g := NewGenerator(d, cfg)
		out := make([]string, 0, 800)
		for i := 0; i < 800; i++ {
			out = append(out, g.Next().Query.Key())
		}
		return out
	}

	a, b := keys(phasedConfig()), keys(phasedConfig())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("phased traces diverge at query %d: %s vs %s", i, a[i], b[i])
		}
	}

	other := phasedConfig()
	other.Seed = 22
	c := keys(other)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("differently-seeded phased traces are identical")
	}
}
