// Package workload builds the synthetic enterprise directory and the query
// and update traces that stand in for the paper's IBM directory and its
// two-day real workload (Section 7.1). The generator reproduces the
// structural properties the evaluation depends on:
//
//   - employees are organized per country, appearing as children of the
//     country entry — a relatively flat namespace that subtree replicas
//     cannot partially replicate;
//   - serialNumber values are structured: a country code followed by a
//     block (organizational) code and a sequence number, so prefix filters
//     describe semantically local regions;
//   - mail local parts are unorganized (random), so filter generalization
//     cannot capture their access pattern;
//   - department entries sit under division entries, with numeric dept
//     codes sharing a per-division prefix;
//   - a small location subtree receives a disproportionate access rate.
//
// All randomness is seeded; the same configuration always produces the same
// directory and trace.
package workload

import (
	"fmt"
	"math/rand"

	"filterdir/internal/dit"
	"filterdir/internal/dn"
	"filterdir/internal/entry"
)

// CountrySpec sizes one country subtree.
type CountrySpec struct {
	Code      string
	Employees int
}

// DirectoryConfig parameterizes the synthetic directory.
type DirectoryConfig struct {
	Seed int64
	// Countries lists the country subtrees; the first is the "target
	// geography" of the case study (≈30 % of employees by default).
	Countries []CountrySpec
	// BlocksPerCountry is the number of serial-number blocks per country;
	// prefix filters at block granularity are the generalized filters of
	// Figure 4.
	BlocksPerCountry int
	// Divisions and DeptsPerDivision size the department forest.
	Divisions        int
	DeptsPerDivision int
	// Locations is the size of the location subtree.
	Locations int
	// PayloadBytes pads each employee entry to approximate the paper's
	// ~6 KB entries (scaled down by default to keep tests fast; byte
	// ratios, not absolute values, carry the update-traffic figures).
	PayloadBytes int
	// IndexAttrs are maintained as indexes on the master store.
	IndexAttrs []string
	// JournalLimit bounds the master's in-memory update journal to the most
	// recent n changes (0 = unbounded); sync sessions that fall further
	// behind require a full reload.
	JournalLimit int
	// Shards overrides the master store's shard count (0 = store default:
	// GOMAXPROCS, or the FILTERDIR_SHARDS environment override).
	Shards int
}

// DefaultDirectoryConfig returns a laptop-scale configuration with the
// paper's proportions: the first country holds ≈30 % of employees.
func DefaultDirectoryConfig(totalEmployees int) DirectoryConfig {
	target := totalEmployees * 30 / 100
	rest := totalEmployees - target
	return DirectoryConfig{
		Seed: 1,
		Countries: []CountrySpec{
			{Code: "us", Employees: target},
			{Code: "in", Employees: rest * 4 / 10},
			{Code: "de", Employees: rest * 3 / 10},
			{Code: "jp", Employees: rest * 2 / 10},
			{Code: "br", Employees: rest - rest*4/10 - rest*3/10 - rest*2/10},
		},
		BlocksPerCountry: 400,
		Divisions:        8,
		DeptsPerDivision: 50,
		Locations:        30,
		PayloadBytes:     512,
		IndexAttrs:       []string{"serialnumber", "mail", "dept", "location", "uid"},
	}
}

// Employee is the generator's bookkeeping for one person entry.
type Employee struct {
	DN     dn.DN
	Serial string
	Mail   string
	// Country and Block index into the directory's country/block structure.
	Country int
	Block   int
}

// Department is the bookkeeping for one department entry.
type Department struct {
	DN       dn.DN
	Dept     string
	Division string
}

// Directory is the built synthetic directory: the master store plus the
// bookkeeping the trace generators draw from.
type Directory struct {
	Config    DirectoryConfig
	Master    *dit.Store
	Employees []Employee
	// ByCountryBlock[c][b] lists employee indexes of country c, block b.
	ByCountryBlock [][][]int
	Departments    []Department
	// ByDivision[d] lists department indexes of division d.
	ByDivision [][]int
	Divisions  []string
	Locations  []string
	// EmployeeCount is the total number of person entries.
	EmployeeCount int
}

// Suffix is the DIT root of the synthetic enterprise directory.
const Suffix = "o=xyz"

// BuildDirectory constructs the master DIT per the configuration.
func BuildDirectory(cfg DirectoryConfig) (*Directory, error) {
	var opts []dit.Option
	if len(cfg.IndexAttrs) > 0 {
		opts = append(opts, dit.WithIndexes(cfg.IndexAttrs...))
	}
	if cfg.JournalLimit > 0 {
		opts = append(opts, dit.WithJournalLimit(cfg.JournalLimit))
	}
	if cfg.Shards > 0 {
		opts = append(opts, dit.WithShards(cfg.Shards))
	}
	master, err := dit.NewStore([]string{Suffix}, opts...)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	d := &Directory{Config: cfg, Master: master}

	var batch []*entry.Entry
	org := entry.New(dn.MustParse(Suffix))
	org.Put("objectclass", "organization").Put("o", "xyz")
	batch = append(batch, org)

	payload := ""
	if cfg.PayloadBytes > 0 {
		b := make([]byte, cfg.PayloadBytes)
		for i := range b {
			b[i] = byte('a' + i%26)
		}
		payload = string(b)
	}

	// Countries with flat employee children.
	d.ByCountryBlock = make([][][]int, len(cfg.Countries))
	for ci, c := range cfg.Countries {
		countryDN := dn.MustParse(fmt.Sprintf("c=%s,%s", c.Code, Suffix))
		ce := entry.New(countryDN)
		ce.Put("objectclass", "country").Put("c", c.Code)
		batch = append(batch, ce)

		blocks := cfg.BlocksPerCountry
		if blocks <= 0 {
			blocks = 1
		}
		// Every block must be populated: small countries get fewer blocks.
		if blocks > c.Employees && c.Employees > 0 {
			blocks = c.Employees
		}
		d.ByCountryBlock[ci] = make([][]int, blocks)
		for i := 0; i < c.Employees; i++ {
			block := i % blocks
			serial := fmt.Sprintf("%02d%03d%04d", ci+10, block, i/blocks)
			uid := fmt.Sprintf("u%08x", r.Uint32())
			mail := fmt.Sprintf("%s@%s.xyz.com", uid, c.Code)
			cn := fmt.Sprintf("emp %s %d", c.Code, i)
			e := entry.New(countryDN.Child(dn.RDN{Attr: "cn", Value: cn}))
			e.Put("objectclass", "top", "person", "organizationalPerson", "inetOrgPerson")
			e.Put("cn", cn)
			e.Put("sn", fmt.Sprintf("sn%d", i))
			e.Put("serialNumber", serial)
			e.Put("uid", uid)
			e.Put("mail", mail)
			e.Put("departmentNumber", fmt.Sprintf("%d", r.Intn(cfg.Divisions*cfg.DeptsPerDivision+1)))
			e.Put("telephoneNumber", fmt.Sprintf("%03d-%04d", r.Intn(1000), r.Intn(10000)))
			if payload != "" {
				e.Put("description", payload)
			}
			idx := len(d.Employees)
			d.Employees = append(d.Employees, Employee{
				DN: e.DN(), Serial: serial, Mail: mail, Country: ci, Block: block,
			})
			d.ByCountryBlock[ci][block] = append(d.ByCountryBlock[ci][block], idx)
			batch = append(batch, e)
		}
	}
	d.EmployeeCount = len(d.Employees)

	// Divisions with department children.
	ouDivs := dn.MustParse("ou=divisions," + Suffix)
	divRoot := entry.New(ouDivs)
	divRoot.Put("objectclass", "organizationalUnit").Put("ou", "divisions")
	batch = append(batch, divRoot)
	d.ByDivision = make([][]int, cfg.Divisions)
	for di := 0; di < cfg.Divisions; di++ {
		divName := fmt.Sprintf("div%02d", di)
		d.Divisions = append(d.Divisions, divName)
		divDN := ouDivs.Child(dn.RDN{Attr: "ou", Value: divName})
		de := entry.New(divDN)
		de.Put("objectclass", "organizationalUnit").Put("ou", divName)
		batch = append(batch, de)
		for k := 0; k < cfg.DeptsPerDivision; k++ {
			code := fmt.Sprintf("%d%03d", di+1, k)
			deptDN := divDN.Child(dn.RDN{Attr: "dept", Value: code})
			ent := entry.New(deptDN)
			ent.Put("objectclass", "department")
			ent.Put("dept", code)
			ent.Put("div", divName)
			ent.Put("description", fmt.Sprintf("department %s of %s", code, divName))
			idx := len(d.Departments)
			d.Departments = append(d.Departments, Department{DN: deptDN, Dept: code, Division: divName})
			d.ByDivision[di] = append(d.ByDivision[di], idx)
			batch = append(batch, ent)
		}
	}

	// Location subtree.
	ouLoc := dn.MustParse("ou=locations," + Suffix)
	locRoot := entry.New(ouLoc)
	locRoot.Put("objectclass", "organizationalUnit").Put("ou", "locations")
	batch = append(batch, locRoot)
	for li := 0; li < cfg.Locations; li++ {
		name := fmt.Sprintf("site%03d", li)
		d.Locations = append(d.Locations, name)
		le := entry.New(ouLoc.Child(dn.RDN{Attr: "location", Value: name}))
		le.Put("objectclass", "location")
		le.Put("location", name)
		le.Put("l", fmt.Sprintf("city%03d", li))
		batch = append(batch, le)
	}

	if err := master.Load(batch); err != nil {
		return nil, fmt.Errorf("load directory: %w", err)
	}
	return d, nil
}

// SerialPrefix returns the block-granularity serial prefix for country ci,
// block b — the value space of the generalized filters
// (serialNumber=<prefix>*).
func (d *Directory) SerialPrefix(ci, block int) string {
	return fmt.Sprintf("%02d%03d", ci+10, block)
}

// SerialPrefixLen is the length of the block-granularity serial prefix.
const SerialPrefixLen = 5
